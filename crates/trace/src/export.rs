//! Trace exporters: Chrome trace-event JSON and a text flame summary.
//!
//! Both exporters sort their input with the total span ordering key
//! before rendering, so output is byte-identical run-to-run regardless
//! of the order workers deposited spans.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::recorder::sort_spans;
use crate::span::Span;

/// Render spans as a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object format), loadable in Perfetto or
/// `chrome://tracing`.
///
/// Layout: one process (`pid` 1, named `bltc`), one thread per distinct
/// track; `tid`s are assigned by the sorted order of track labels, so
/// the same span set always maps to the same thread ids. Timestamps are
/// microseconds of modeled time with nanosecond precision. Every span
/// becomes one `"X"` (complete) event whose `args` carry the typed
/// attributes; `None` attributes are omitted so the document stays
/// compact and stable.
pub fn chrome_trace(spans: &[Span]) -> String {
    let mut spans = spans.to_vec();
    sort_spans(&mut spans);

    // Deterministic tid assignment: sorted distinct track labels.
    let mut tids: BTreeMap<String, u64> = spans.iter().map(|s| (s.track.label(), 0)).collect();
    for (i, tid) in tids.values_mut().enumerate() {
        *tid = i as u64 + 1;
    }

    let mut events = Vec::with_capacity(tids.len() + spans.len() + 1);
    events.push(
        Json::obj()
            .field("name", Json::s("process_name"))
            .field("ph", Json::s("M"))
            .field("pid", Json::u(1))
            .field("tid", Json::u(0))
            .field("args", Json::obj().field("name", Json::s("bltc"))),
    );
    for (label, &tid) in &tids {
        events.push(
            Json::obj()
                .field("name", Json::s("thread_name"))
                .field("ph", Json::s("M"))
                .field("pid", Json::u(1))
                .field("tid", Json::u(tid))
                .field("args", Json::obj().field("name", Json::s(label.clone()))),
        );
    }
    for s in &spans {
        let mut args = Json::obj()
            .field("phase", Json::s(s.phase.label()))
            .field("billed_s", Json::e(s.billed_s, 12));
        if s.bytes > 0 {
            args = args.field("bytes", Json::u(s.bytes));
        }
        if s.flops > 0.0 {
            args = args.field("flops", Json::e(s.flops, 6));
        }
        if let Some(c) = s.chunk {
            args = args.field("chunk", Json::u(c as u64));
        }
        if let Some(t) = s.target {
            args = args.field("target", Json::u(t as u64));
        }
        if let Some(r) = s.resident_bytes {
            args = args.field("resident_bytes", Json::u(r));
        }
        if let Some(t) = s.tenant {
            args = args.field("tenant", Json::u(t));
        }
        if let Some(j) = s.job {
            args = args.field("job", Json::u(j));
        }
        events.push(
            Json::obj()
                .field("name", Json::s(s.name))
                .field("cat", Json::s(s.phase.label()))
                .field("ph", Json::s("X"))
                .field("ts", Json::f(s.start_s * 1e6, 3))
                .field("dur", Json::f(s.duration_s() * 1e6, 3))
                .field("pid", Json::u(1))
                .field("tid", Json::u(tids[&s.track.label()]))
                .field("args", args),
        );
    }

    Json::obj()
        .field("displayTimeUnit", Json::s("ns"))
        .field("traceEvents", Json::arr(events))
        .render_compact()
}

/// Render a compact text flamegraph-style rollup: a makespan header,
/// billed seconds per phase, and billed seconds per track (each with
/// its dominant span names). Deterministic line order.
pub fn flame_summary(spans: &[Span]) -> String {
    let mut spans = spans.to_vec();
    sort_spans(&mut spans);

    let makespan = spans.iter().fold(0.0f64, |m, s| m.max(s.end_s));
    let billed_total: f64 = spans.iter().map(|s| s.billed_s).sum();

    let mut by_phase: BTreeMap<&'static str, (u64, f64)> = BTreeMap::new();
    let mut by_track: BTreeMap<String, (u64, f64, u64)> = BTreeMap::new();
    let mut by_name: BTreeMap<(String, &'static str), f64> = BTreeMap::new();
    for s in &spans {
        let e = by_phase.entry(s.phase.label()).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += s.billed_s;
        let e = by_track.entry(s.track.label()).or_insert((0, 0.0, 0));
        e.0 += 1;
        e.1 += s.billed_s;
        e.2 += s.bytes;
        *by_name.entry((s.track.label(), s.name)).or_insert(0.0) += s.billed_s;
    }

    let mut out = format!(
        "trace: {} spans, makespan {:.6e} s, billed {:.6e} s\n",
        spans.len(),
        makespan,
        billed_total
    );
    out.push_str("phases:\n");
    for (phase, (count, billed)) in &by_phase {
        out.push_str(&format!(
            "  {phase:<12} {count:>6} spans  {billed:>14.6e} s\n"
        ));
    }
    out.push_str("tracks:\n");
    for (track, (count, billed, bytes)) in &by_track {
        out.push_str(&format!(
            "  {track:<22} {count:>6} spans  {billed:>14.6e} s  {bytes:>12} B\n"
        ));
        let mut names: Vec<(&&'static str, &f64)> = by_name
            .iter()
            .filter(|((t, _), _)| t == track)
            .map(|((_, n), b)| (n, b))
            .collect();
        names.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap().then(a.0.cmp(b.0)));
        for (name, billed) in names.into_iter().take(4) {
            out.push_str(&format!("    {name:<20} {billed:>14.6e} s\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Phase, Track};

    fn sample() -> Vec<Span> {
        vec![
            Span::new(Track::Host(0), "build", 0.0, 2e-5).phase(Phase::SetupHost),
            Span::new(Track::Nic(0), "skeleton-get", 2e-5, 5e-5)
                .phase(Phase::SetupComm)
                .bytes(1024)
                .target(1),
            Span::new(Track::DeviceStream(0, 1), "remote-chunk", 5e-5, 9e-5)
                .phase(Phase::Compute)
                .flops(1e6)
                .chunk(0),
        ]
    }

    #[test]
    fn chrome_trace_is_deterministic_and_complete() {
        let spans = sample();
        let mut reversed = spans.clone();
        reversed.reverse();
        let a = chrome_trace(&spans);
        let b = chrome_trace(&reversed);
        assert_eq!(a, b, "span order must not affect output bytes");
        assert!(a.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(a.contains("\"name\":\"process_name\""));
        assert!(a.contains("\"name\":\"device/0/stream/1\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"cat\":\"setup_comm\""));
        assert!(a.contains("\"bytes\":1024"));
        assert!(a.contains("\"chunk\":0"));
        // One M event per track + process_name + one X per span.
        assert_eq!(a.matches("\"ph\":\"M\"").count(), 4);
        assert_eq!(a.matches("\"ph\":\"X\"").count(), 3);
    }

    #[test]
    fn tids_follow_sorted_track_labels() {
        let a = chrome_trace(&sample());
        // Sorted labels: device/0/stream/1 < host/0 < nic/0.
        let dev = a.find("\"name\":\"device/0/stream/1\"").unwrap();
        let host = a.find("\"name\":\"host/0\"").unwrap();
        let nic = a.find("\"name\":\"nic/0\"").unwrap();
        assert!(dev < host && host < nic);
    }

    #[test]
    fn flame_summary_rolls_up() {
        let text = flame_summary(&sample());
        assert!(text.starts_with("trace: 3 spans"));
        assert!(text.contains("setup_host"));
        assert!(text.contains("host/0"));
        assert!(text.contains("skeleton-get"));
        assert_eq!(text, flame_summary(&sample()));
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let json = chrome_trace(&[]);
        assert!(json.contains("\"traceEvents\":[{"));
        let text = flame_summary(&[]);
        assert!(text.starts_with("trace: 0 spans"));
    }
}
