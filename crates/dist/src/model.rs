//! Analytic host-side setup-time model and the pipelined critical-path
//! clock.
//!
//! The paper's "setup" phase (tree construction, batch construction,
//! interaction-list traversal, LET assembly) runs on the host CPU. The
//! harnesses in this workspace run on arbitrary container hardware, so
//! — like the GPU clock in `gpu-sim` and the CPU clock in
//! `bltc_core::cost` — setup seconds are *modeled* from exact work
//! counts rather than measured. That keeps every reported phase time
//! deterministic (a property the distributed tests rely on: two runs
//! over different network fabrics must differ **only** in modeled
//! communication seconds).
//!
//! `pipelined_clock` adds the overlap-aware view: the same per-rank
//! work items, scheduled on four resources (host, NIC, PCIe, device) as
//! an explicit phase DAG instead of one serial chain. It never changes
//! what work exists — every second the serial phases charge appears in
//! the DAG exactly once — so its makespan is provably ≤ the serial
//! phase sum.

use bltc_gpu::{dispatch_remote_chunks, GpuSimBreakdown, RemoteChunkWork};
use bltc_trace::{Phase, Span, Track};

use crate::DistConfig;

/// Linear cost model for host-side setup work.
///
/// `setup ≈ base + a·N·levels + b·launches + c·fetched`, where the
/// `N·levels` term covers tree/batch construction (each particle is
/// touched once per level during splitting), the `launches` term covers
/// interaction-list traversal and kernel enqueueing, and the `fetched`
/// term covers unpacking remote LET data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostModel {
    /// Seconds per particle per tree level (sort/split/scan work).
    pub per_particle_level_s: f64,
    /// Seconds per batch–cluster kernel launch (traversal + enqueue).
    pub per_launch_s: f64,
    /// Seconds per remote particle fetched into the LET.
    pub per_fetched_particle_s: f64,
    /// Fixed per-run overhead.
    pub base_s: f64,
    /// Seconds to spawn one rank thread and initialize its communicator
    /// state (the per-rank share of standing up an SPMD world — thread
    /// creation, barrier/rendezvous setup, window infrastructure).
    pub rank_spawn_s: f64,
    /// Seconds per particle the *driver* pays to scatter the inputs and
    /// gather the results of a one-shot world (`run_spmd`-style entry,
    /// where all particle data passes through the driver every call).
    pub per_particle_gather_s: f64,
    /// Seconds to submit one epoch to the live ranks of a persistent
    /// session (rendezvous hand-off; no particle data moves).
    pub epoch_submit_s: f64,
}

impl Default for HostModel {
    /// Calibrated against a ~2 GHz server core running the host phases
    /// of this very implementation (order-of-magnitude fidelity is all
    /// the phase-share figures need).
    fn default() -> Self {
        Self {
            per_particle_level_s: 6e-9,
            per_launch_s: 1.5e-7,
            per_fetched_particle_s: 2.5e-8,
            base_s: 2e-5,
            rank_spawn_s: 5e-5,
            per_particle_gather_s: 4e-9,
            epoch_submit_s: 2e-6,
        }
    }
}

impl HostModel {
    /// Modeled setup seconds for one rank.
    ///
    /// * `n` — particles the rank builds trees/batches over,
    /// * `levels` — tree depth (max level + 1),
    /// * `kernel_launches` — batch–cluster pairs enqueued,
    /// * `fetched_particles` — remote particles unpacked into the LET.
    pub fn setup_seconds(
        &self,
        n: usize,
        levels: usize,
        kernel_launches: u64,
        fetched_particles: u64,
    ) -> f64 {
        self.base_s
            + self.per_particle_level_s * n as f64 * levels.max(1) as f64
            + self.per_launch_s * kernel_launches as f64
            + self.per_fetched_particle_s * fetched_particles as f64
    }

    /// Modeled host seconds for one RCB decomposition of `n` particles
    /// into `parts` parts.
    ///
    /// RCB performs `⌈log₂ parts⌉` bisection levels, each touching every
    /// particle once (median selection + sides split) — the same
    /// per-particle-per-level work class as tree construction, so the
    /// same coefficient is charged. Time-stepping drivers
    /// (`bltc-sim`) charge this only on repartition-cadence steps,
    /// which is what makes the cadence visible in the modeled clock.
    pub fn repartition_seconds(&self, n: usize, parts: usize) -> f64 {
        let levels = (parts.max(1) as f64).log2().ceil().max(1.0);
        self.base_s + self.per_particle_level_s * n as f64 * levels
    }

    /// Modeled host seconds to stand up one SPMD world over `n`
    /// particles on `ranks` ranks: thread spawn + communicator setup
    /// per rank, plus the driver-side scatter/gather of every particle
    /// record that a one-shot (`run_spmd`-style) entry implies.
    ///
    /// The respawn-per-step integrator pays this on **every** force
    /// evaluation; a persistent session pays it once at launch and then
    /// [`HostModel::epoch_seconds`] per epoch — the amortization the
    /// session subsystem exists to win.
    pub fn world_spawn_seconds(&self, n: usize, ranks: usize) -> f64 {
        self.base_s + self.rank_spawn_s * ranks as f64 + self.per_particle_gather_s * n as f64
    }

    /// Modeled host seconds to submit one epoch to live ranks.
    pub fn epoch_seconds(&self) -> f64 {
        self.epoch_submit_s
    }
}

/// Modeled cost of fetching and evaluating one LET chunk — the exact
/// counts the plan stage derives from the interaction lists, weighted by
/// the evaluating kernel (potential vs gradient flops).
#[derive(Debug, Clone, Copy)]
pub struct ChunkCost {
    /// One-sided gets the chunk issues.
    pub messages: u64,
    /// Payload bytes fetched (all staged onto the device over PCIe).
    pub bytes: u64,
    /// Remote particles unpacked on the host (direct chunks).
    pub fetched_particles: u64,
    /// Remote-eval kernel launches gated on this chunk.
    pub launches: u64,
    /// Flops of those launches.
    pub exec_flops: f64,
    /// Device-memory bytes of those launches (roofline term).
    pub eval_bytes: f64,
}

/// One remote rank's LET fetch stream: the skeleton get, the traversal
/// it unblocks, and the payload chunks that follow.
#[derive(Debug, Clone)]
pub struct LetFetchPlan {
    /// Remote rank this LET views.
    pub target: usize,
    /// Skeleton payload bytes (host-side metadata, one get).
    pub skeleton_bytes: u64,
    /// Batch–cluster pairs the traversal against this skeleton emits
    /// (host interaction-list work, charged per launch).
    pub traversal_launches: u64,
    /// Payload chunks in land order.
    pub chunks: Vec<ChunkCost>,
}

/// Per-chunk landing clocks of a pipelined epoch, in land order.
#[derive(Debug, Clone, Copy)]
pub struct ChunkClock {
    /// Remote rank the chunk was fetched from.
    pub target: usize,
    /// Time the chunk's last get completes on the NIC.
    pub land_s: f64,
    /// Time the chunk is unpacked and staged — its kernels may issue.
    pub ready_s: f64,
}

/// The overlap-aware view of one rank's epoch: the critical path through
/// the phase DAG, alongside the serial phase sum it improves on.
///
/// Invariants (enforced by the test suite):
/// - `pipelined_s ≤ serial_s` always, with equality on one rank (no
///   remote work to overlap);
/// - `chunks` land times are nondecreasing (one NIC, serial α–β model);
/// - the clocks are pure functions of the work counts — bitwise
///   reproducible across host pool sizes.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Critical-path seconds of the pipelined epoch.
    pub pipelined_s: f64,
    /// Serial phase-sum seconds (`RankReport::total()` of the same
    /// epoch) — kept here so the overlap win is self-contained.
    pub serial_s: f64,
    /// Host time at which local tree/charges/interaction lists exist and
    /// the local device block may start.
    pub local_lists_s: f64,
    /// Time the last LET chunk lands (0 with no remote ranks).
    pub last_land_s: f64,
    /// Streams the remote dispatch cycled through.
    pub streams: usize,
    /// Per-chunk land/ready clocks, in dispatch order.
    pub chunks: Vec<ChunkClock>,
    /// Trace spans of this epoch's phase DAG: every serial phase
    /// component placed at its wall position on the rank's resource
    /// tracks. Derived alongside the clocks from the same work counts
    /// and never read back, so collecting them cannot perturb any
    /// result. Per-phase `billed_s` sums reconcile against the serial
    /// `RankReport` phase clocks; the latest span end is `pipelined_s`.
    pub spans: Vec<Span>,
}

/// Compute the pipelined critical path of one rank's epoch.
///
/// The phase DAG scheduled here, resource by resource:
///
/// - **host** — tree/charges/batch build, then local interaction lists,
///   then (as skeletons land) per-LET traversals, then per-chunk
///   unpacking; one core, serial, in that order.
/// - **NIC** — skeleton gets as soon as the build exposes windows, then
///   each LET's payload chunks once its traversal has demanded them;
///   serialized by the α–β model's assumption. Each get is priced on
///   the link the (origin, target) pair actually crosses
///   ([`DistConfig::link`]): the intra-node path when the two ranks
///   share a compute node, the inter-node fabric otherwise.
/// - **PCIe** — each chunk's staging share after it lands and unpacks.
/// - **device** — the local block (HtD staging, precompute, local
///   compute) starting when the local lists exist, then remote-eval
///   kernels dispatched onto `cfg.streams` simulated streams as their
///   chunks become ready, then the final DtH of the potentials.
///
/// Every serial phase component appears exactly once (chunk staging and
/// exec times are proportional shares of the serial aggregates), so the
/// makespan cannot exceed the serial sum; the result is clamped to
/// `serial_total_s` so the invariant survives floating-point
/// reassociation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pipelined_clock(
    cfg: &DistConfig,
    rank: usize,
    sim: &GpuSimBreakdown,
    n: usize,
    levels: usize,
    local_launches: u64,
    plans: &[LetFetchPlan],
    serial_total_s: f64,
) -> PipelineReport {
    let h = &cfg.host;
    let r = rank as u32;
    let mut spans: Vec<Span> = Vec::new();
    let build_s = h.base_s + h.per_particle_level_s * n as f64 * levels.max(1) as f64;
    let mut host_free = build_s + h.per_launch_s * local_launches as f64;
    let local_start = host_free;
    let mut nic_free = build_s;
    spans.push(Span::new(Track::Host(r), "build", 0.0, build_s).phase(Phase::SetupHost));
    spans.push(
        Span::new(Track::Host(r), "local-lists", build_s, local_start).phase(Phase::SetupHost),
    );

    // Skeleton gets first (windows exist once the build completes), each
    // LET's traversal on the host as its skeleton lands.
    let mut traversal_done = Vec::with_capacity(plans.len());
    for p in plans {
        let get_s = cfg.link(rank, p.target).seconds_for(1, p.skeleton_bytes);
        let land = nic_free + get_s;
        spans.push(
            Span::new(Track::Nic(r), "skeleton-get", nic_free, land)
                .phase(Phase::SetupComm)
                .billed(get_s)
                .bytes(p.skeleton_bytes)
                .target(p.target as u32),
        );
        nic_free = land;
        let traverse_s = h.per_launch_s * p.traversal_launches as f64;
        let t_start = host_free.max(land);
        host_free = t_start + traverse_s;
        spans.push(
            Span::new(Track::Host(r), "traversal", t_start, host_free)
                .phase(Phase::SetupHost)
                .billed(traverse_s)
                .target(p.target as u32),
        );
        traversal_done.push(host_free);
    }

    // Aggregate remote work, apportioned to chunks as proportional
    // shares: Σ of shares equals the serial aggregate by construction
    // (a per-chunk roofline could exceed it — max is subadditive).
    let total_flops: f64 = plans
        .iter()
        .flat_map(|p| &p.chunks)
        .map(|c| c.exec_flops)
        .sum();
    let total_eval_bytes: f64 = plans
        .iter()
        .flat_map(|p| &p.chunks)
        .map(|c| c.eval_bytes)
        .sum();
    let device_bytes: u64 = plans.iter().flat_map(|p| &p.chunks).map(|c| c.bytes).sum();
    let num_chunks = plans.iter().map(|p| p.chunks.len()).sum::<usize>();
    let exec_total = cfg.spec.exec_seconds(total_flops, total_eval_bytes);
    let stage_total = if device_bytes > 0 {
        cfg.spec.transfer_seconds(device_bytes as f64)
    } else {
        0.0
    };

    // Streaming (budgeted) LET keeps only the in-flight chunk resident;
    // retained LET accumulates every chunk through evaluation — the
    // exact semantics `RankReport::peak_let_bytes` reports.
    let streaming = cfg.let_memory_budget.is_some();
    let launch_overhead_s = cfg.spec.host_enqueue_s + cfg.spec.launch_latency_s;
    let mut resident_bytes = 0u64;
    let mut chunk_id = 0u32;
    // (chunk id, billed seconds, flops) of each kernel the dispatcher
    // will enqueue, in enqueue order — correlates `dispatch.events` back
    // to chunks and carries the exact serial billing of each kernel.
    let mut kernel_meta: Vec<(u32, f64, f64)> = Vec::new();
    let mut exec_billed = 0.0f64;

    let mut pcie_free = 0.0f64;
    let mut works = Vec::with_capacity(num_chunks);
    let mut chunks = Vec::with_capacity(num_chunks);
    let mut last_land = 0.0f64;
    for (p, &traversed) in plans.iter().zip(&traversal_done) {
        let link = cfg.link(rank, p.target);
        for c in &p.chunks {
            let get_s = link.seconds_for(c.messages, c.bytes);
            let nic_start = nic_free.max(traversed);
            let land = nic_start + get_s;
            nic_free = land;
            last_land = land;
            resident_bytes = if streaming {
                c.bytes
            } else {
                resident_bytes + c.bytes
            };
            spans.push(
                Span::new(Track::Nic(r), "let-chunk-get", nic_start, land)
                    .phase(Phase::SetupComm)
                    .billed(get_s)
                    .bytes(c.bytes)
                    .chunk(chunk_id)
                    .target(p.target as u32)
                    .resident(resident_bytes),
            );
            let unpack_s = h.per_fetched_particle_s * c.fetched_particles as f64;
            let unpack_start = host_free.max(land);
            let unpacked = unpack_start + unpack_s;
            host_free = unpacked;
            spans.push(
                Span::new(Track::Host(r), "unpack", unpack_start, unpacked)
                    .phase(Phase::SetupHost)
                    .billed(unpack_s)
                    .chunk(chunk_id)
                    .target(p.target as u32),
            );
            let stage_share = if device_bytes > 0 {
                stage_total * (c.bytes as f64 / device_bytes as f64)
            } else {
                0.0
            };
            let stage_start = pcie_free.max(unpacked);
            let ready = stage_start + stage_share;
            pcie_free = ready;
            spans.push(
                Span::new(Track::Pcie(r), "stage", stage_start, ready)
                    .phase(Phase::SetupStage)
                    .billed(stage_share)
                    .bytes(c.bytes)
                    .chunk(chunk_id)
                    .target(p.target as u32),
            );
            let exec_share = if total_flops > 0.0 {
                c.exec_flops / total_flops
            } else {
                1.0 / num_chunks.max(1) as f64
            };
            if c.launches > 0 {
                let chunk_exec_s = exec_total * exec_share;
                exec_billed += chunk_exec_s;
                let per_exec_s = chunk_exec_s / c.launches as f64;
                let per_flops = c.exec_flops / c.launches as f64;
                for _ in 0..c.launches {
                    kernel_meta.push((chunk_id, per_exec_s + launch_overhead_s, per_flops));
                }
            }
            works.push(RemoteChunkWork {
                ready_s: ready,
                exec_s: exec_total * exec_share,
                launches: c.launches,
            });
            chunks.push(ChunkClock {
                target: p.target,
                land_s: land,
                ready_s: ready,
            });
            chunk_id += 1;
        }
    }

    // The local device block occupies the device from the moment the
    // local lists exist; remote chunks stream in behind it.
    let local_block_s =
        sim.htod_sources_s + sim.precompute_s + sim.dtoh_charges_s + sim.htod_let_s + sim.compute_s;
    {
        // Local block spans, in charge order on the PCIe and device
        // tracks (the block occupies every stream; stream 0 stands for
        // the device).
        let t1 = local_start + sim.htod_sources_s;
        let t2 = t1 + sim.precompute_s;
        let t3 = t2 + sim.dtoh_charges_s;
        let t4 = t3 + sim.htod_let_s;
        let t5 = t4 + sim.compute_s;
        spans.push(
            Span::new(Track::Pcie(r), "htod-sources", local_start, t1).phase(Phase::SetupStage),
        );
        spans.push(
            Span::new(Track::DeviceStream(r, 0), "precompute", t1, t2).phase(Phase::Precompute),
        );
        spans.push(Span::new(Track::Pcie(r), "dtoh-charges", t2, t3).phase(Phase::Precompute));
        spans.push(Span::new(Track::Pcie(r), "htod-let", t3, t4).phase(Phase::SetupStage));
        spans.push(
            Span::new(Track::DeviceStream(r, 0), "local-compute", t4, t5).phase(Phase::Compute),
        );
    }
    let dispatch =
        dispatch_remote_chunks(&cfg.spec, cfg.streams, local_start + local_block_s, &works);
    debug_assert_eq!(
        dispatch.events.len(),
        kernel_meta.len(),
        "one kernel event per planned launch"
    );
    for (e, &(chunk, billed_s, flops)) in dispatch.events.iter().zip(&kernel_meta) {
        spans.push(
            Span::new(
                Track::DeviceStream(r, e.stream as u32),
                "remote-chunk",
                e.start_s,
                e.end_s,
            )
            .phase(Phase::Compute)
            .billed(billed_s)
            .flops(flops)
            .chunk(chunk),
        );
    }
    // Exec share of chunks that carry flops but no launches (should not
    // occur — launches generate the flops — but keep the compute-phase
    // reconciliation exact rather than silently leaking the share).
    let exec_residual = exec_total - exec_billed;
    if exec_residual > exec_total * 1e-9 {
        spans.push(
            Span::new(
                Track::DeviceStream(r, 0),
                "remote-exec-residual",
                dispatch.done_s,
                dispatch.done_s,
            )
            .phase(Phase::Compute)
            .billed(exec_residual),
        );
    }
    let raw = dispatch.done_s + sim.dtoh_potentials_s;

    // `pipelined ≤ serial` holds structurally (every serial second
    // appears in the DAG exactly once), so any real excess is a DAG
    // accounting bug — a phase billed twice, or work that was never part
    // of the serial sum. Fail loudly instead of letting the clamp below
    // silently absorb it; the clamp stays only to iron out harmless fp
    // reassociation at the equality boundary.
    debug_assert!(
        raw <= serial_total_s * (1.0 + 1e-9),
        "pipelined clock ({raw:.9e}s) exceeds the serial phase sum \
         ({serial_total_s:.9e}s): a phase is billed into the DAG that the \
         serial accounting never charged"
    );

    let pipelined_s = raw.min(serial_total_s);
    // The potentials DtH closes the epoch: anchor its end at the clamped
    // makespan so the latest span end *is* `pipelined_s`, and iron the
    // same fp-reassociation noise out of every other span (the clamp
    // above moves the makespan by at most ~1e-9 relative).
    spans.push(
        Span::new(
            Track::Pcie(r),
            "dtoh-potentials",
            (pipelined_s - sim.dtoh_potentials_s).max(0.0),
            pipelined_s,
        )
        .phase(Phase::Compute)
        .billed(sim.dtoh_potentials_s),
    );
    for s in &mut spans {
        s.end_s = s.end_s.min(pipelined_s);
        s.start_s = s.start_s.min(s.end_s);
    }

    PipelineReport {
        pipelined_s,
        serial_s: serial_total_s,
        local_lists_s: local_start,
        last_land_s: last_land,
        streams: cfg.streams,
        chunks,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_every_argument() {
        let m = HostModel::default();
        let base = m.setup_seconds(1000, 5, 100, 0);
        assert!(base > 0.0);
        assert!(m.setup_seconds(2000, 5, 100, 0) > base);
        assert!(m.setup_seconds(1000, 6, 100, 0) > base);
        assert!(m.setup_seconds(1000, 5, 200, 0) > base);
        assert!(m.setup_seconds(1000, 5, 100, 500) > base);
    }

    #[test]
    fn deterministic() {
        let m = HostModel::default();
        assert_eq!(
            m.setup_seconds(12345, 7, 999, 42),
            m.setup_seconds(12345, 7, 999, 42)
        );
    }

    #[test]
    fn zero_levels_clamped() {
        let m = HostModel::default();
        assert!(m.setup_seconds(1000, 0, 0, 0) > m.base_s);
    }

    #[test]
    fn repartition_cost_grows_with_particles_and_parts() {
        let m = HostModel::default();
        let base = m.repartition_seconds(10_000, 4);
        assert!(base > m.base_s);
        assert!(m.repartition_seconds(20_000, 4) > base);
        assert!(m.repartition_seconds(10_000, 16) > base);
        // One part still pays one pass over the particles.
        assert!(m.repartition_seconds(10_000, 1) > m.base_s);
        // Deterministic, like every clock in the workspace.
        assert_eq!(base, m.repartition_seconds(10_000, 4));
    }

    /// A deliberately mis-billed phase DAG must trip the loud
    /// `pipelined ≤ serial` check instead of being silently clamped: here
    /// the chunk bills 10¹⁵ flops of device work while the claimed
    /// serial phase sum is a nanosecond, so the excess is structural,
    /// not fp reassociation.
    #[cfg(debug_assertions)]
    #[test]
    fn mis_billed_phase_trips_the_pipelined_clock_assert() {
        let cfg = DistConfig::comet(bltc_core::config::BltcParams::new(0.8, 3, 60, 60));
        let sim = GpuSimBreakdown {
            setup_host_s: 0.0,
            htod_sources_s: 0.0,
            precompute_s: 0.0,
            dtoh_charges_s: 0.0,
            htod_let_s: 0.0,
            compute_s: 0.0,
            dtoh_potentials_s: 0.0,
        };
        let plans = vec![LetFetchPlan {
            target: 1,
            skeleton_bytes: 64,
            traversal_launches: 1,
            chunks: vec![ChunkCost {
                messages: 1,
                bytes: 1024,
                fetched_particles: 0,
                launches: 1,
                exec_flops: 1e15,
                eval_bytes: 1e9,
            }],
        }];
        let trip = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipelined_clock(&cfg, 0, &sim, 100, 3, 10, &plans, 1e-9)
        }));
        assert!(
            trip.is_err(),
            "understating the serial sum must fail the debug assert, not clamp silently"
        );
    }

    #[test]
    fn world_spawn_dwarfs_epoch_submission() {
        // The whole point of persistent sessions: respawning a world
        // every step costs orders of magnitude more host time than
        // submitting an epoch to live ranks.
        let m = HostModel::default();
        let spawn = m.world_spawn_seconds(10_000, 4);
        assert!(spawn > 100.0 * m.epoch_seconds(), "{spawn} vs epoch");
        // Monotone in ranks and particles.
        assert!(m.world_spawn_seconds(10_000, 8) > spawn);
        assert!(m.world_spawn_seconds(20_000, 4) > spawn);
        assert!(m.epoch_seconds() > 0.0);
    }
}
