//! Analytic host-side setup-time model.
//!
//! The paper's "setup" phase (tree construction, batch construction,
//! interaction-list traversal, LET assembly) runs on the host CPU. The
//! harnesses in this workspace run on arbitrary container hardware, so
//! — like the GPU clock in `gpu-sim` and the CPU clock in
//! `bltc_core::cost` — setup seconds are *modeled* from exact work
//! counts rather than measured. That keeps every reported phase time
//! deterministic (a property the distributed tests rely on: two runs
//! over different network fabrics must differ **only** in modeled
//! communication seconds).

/// Linear cost model for host-side setup work.
///
/// `setup ≈ base + a·N·levels + b·launches + c·fetched`, where the
/// `N·levels` term covers tree/batch construction (each particle is
/// touched once per level during splitting), the `launches` term covers
/// interaction-list traversal and kernel enqueueing, and the `fetched`
/// term covers unpacking remote LET data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostModel {
    /// Seconds per particle per tree level (sort/split/scan work).
    pub per_particle_level_s: f64,
    /// Seconds per batch–cluster kernel launch (traversal + enqueue).
    pub per_launch_s: f64,
    /// Seconds per remote particle fetched into the LET.
    pub per_fetched_particle_s: f64,
    /// Fixed per-run overhead.
    pub base_s: f64,
    /// Seconds to spawn one rank thread and initialize its communicator
    /// state (the per-rank share of standing up an SPMD world — thread
    /// creation, barrier/rendezvous setup, window infrastructure).
    pub rank_spawn_s: f64,
    /// Seconds per particle the *driver* pays to scatter the inputs and
    /// gather the results of a one-shot world (`run_spmd`-style entry,
    /// where all particle data passes through the driver every call).
    pub per_particle_gather_s: f64,
    /// Seconds to submit one epoch to the live ranks of a persistent
    /// session (rendezvous hand-off; no particle data moves).
    pub epoch_submit_s: f64,
}

impl Default for HostModel {
    /// Calibrated against a ~2 GHz server core running the host phases
    /// of this very implementation (order-of-magnitude fidelity is all
    /// the phase-share figures need).
    fn default() -> Self {
        Self {
            per_particle_level_s: 6e-9,
            per_launch_s: 1.5e-7,
            per_fetched_particle_s: 2.5e-8,
            base_s: 2e-5,
            rank_spawn_s: 5e-5,
            per_particle_gather_s: 4e-9,
            epoch_submit_s: 2e-6,
        }
    }
}

impl HostModel {
    /// Modeled setup seconds for one rank.
    ///
    /// * `n` — particles the rank builds trees/batches over,
    /// * `levels` — tree depth (max level + 1),
    /// * `kernel_launches` — batch–cluster pairs enqueued,
    /// * `fetched_particles` — remote particles unpacked into the LET.
    pub fn setup_seconds(
        &self,
        n: usize,
        levels: usize,
        kernel_launches: u64,
        fetched_particles: u64,
    ) -> f64 {
        self.base_s
            + self.per_particle_level_s * n as f64 * levels.max(1) as f64
            + self.per_launch_s * kernel_launches as f64
            + self.per_fetched_particle_s * fetched_particles as f64
    }

    /// Modeled host seconds for one RCB decomposition of `n` particles
    /// into `parts` parts.
    ///
    /// RCB performs `⌈log₂ parts⌉` bisection levels, each touching every
    /// particle once (median selection + sides split) — the same
    /// per-particle-per-level work class as tree construction, so the
    /// same coefficient is charged. Time-stepping drivers
    /// (`bltc-sim`) charge this only on repartition-cadence steps,
    /// which is what makes the cadence visible in the modeled clock.
    pub fn repartition_seconds(&self, n: usize, parts: usize) -> f64 {
        let levels = (parts.max(1) as f64).log2().ceil().max(1.0);
        self.base_s + self.per_particle_level_s * n as f64 * levels
    }

    /// Modeled host seconds to stand up one SPMD world over `n`
    /// particles on `ranks` ranks: thread spawn + communicator setup
    /// per rank, plus the driver-side scatter/gather of every particle
    /// record that a one-shot (`run_spmd`-style) entry implies.
    ///
    /// The respawn-per-step integrator pays this on **every** force
    /// evaluation; a persistent session pays it once at launch and then
    /// [`HostModel::epoch_seconds`] per epoch — the amortization the
    /// session subsystem exists to win.
    pub fn world_spawn_seconds(&self, n: usize, ranks: usize) -> f64 {
        self.base_s + self.rank_spawn_s * ranks as f64 + self.per_particle_gather_s * n as f64
    }

    /// Modeled host seconds to submit one epoch to live ranks.
    pub fn epoch_seconds(&self) -> f64 {
        self.epoch_submit_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_every_argument() {
        let m = HostModel::default();
        let base = m.setup_seconds(1000, 5, 100, 0);
        assert!(base > 0.0);
        assert!(m.setup_seconds(2000, 5, 100, 0) > base);
        assert!(m.setup_seconds(1000, 6, 100, 0) > base);
        assert!(m.setup_seconds(1000, 5, 200, 0) > base);
        assert!(m.setup_seconds(1000, 5, 100, 500) > base);
    }

    #[test]
    fn deterministic() {
        let m = HostModel::default();
        assert_eq!(
            m.setup_seconds(12345, 7, 999, 42),
            m.setup_seconds(12345, 7, 999, 42)
        );
    }

    #[test]
    fn zero_levels_clamped() {
        let m = HostModel::default();
        assert!(m.setup_seconds(1000, 0, 0, 0) > m.base_s);
    }

    #[test]
    fn repartition_cost_grows_with_particles_and_parts() {
        let m = HostModel::default();
        let base = m.repartition_seconds(10_000, 4);
        assert!(base > m.base_s);
        assert!(m.repartition_seconds(20_000, 4) > base);
        assert!(m.repartition_seconds(10_000, 16) > base);
        // One part still pays one pass over the particles.
        assert!(m.repartition_seconds(10_000, 1) > m.base_s);
        // Deterministic, like every clock in the workspace.
        assert_eq!(base, m.repartition_seconds(10_000, 4));
    }

    #[test]
    fn world_spawn_dwarfs_epoch_submission() {
        // The whole point of persistent sessions: respawning a world
        // every step costs orders of magnitude more host time than
        // submitting an epoch to live ranks.
        let m = HostModel::default();
        let spawn = m.world_spawn_seconds(10_000, 4);
        assert!(spawn > 100.0 * m.epoch_seconds(), "{spawn} vs epoch");
        // Monotone in ranks and particles.
        assert!(m.world_spawn_seconds(10_000, 8) > spawn);
        assert!(m.world_spawn_seconds(20_000, 4) > spawn);
        assert!(m.epoch_seconds() > 0.0);
    }
}
