//! Persistent distributed sessions: the field pipeline re-entered as
//! *epochs* against live ranks, with collectives-based repartitioning
//! and particle **migration** instead of full redistribution.
//!
//! [`crate::run_distributed_field_on`] pays, on every call, a full
//! `run_spmd` world: thread spawn, communicator construction, and a
//! driver-side scatter/gather of all particle data. A [`FieldSession`]
//! instead keeps the ranks alive ([`mpi_sim::Session`]) and keeps the
//! particles **resident on their owning ranks** between calls:
//!
//! - [`FieldSession::launch`] distributes the initial RCB partition and
//!   spawns the rank threads — the session's only thread-spawn phase;
//! - [`FieldSession::eval_field`] runs the *same rank-level body* as
//!   `run_distributed_field_on` ([`crate::eval_field_rank`]) as one
//!   epoch: windows are re-exposed for the epoch, LETs rebuilt from the
//!   resident positions, and each rank's [`FieldResult`] is stored back
//!   into its slot (nothing O(N) returns to the driver);
//! - [`FieldSession::migrate`] repartitions **rank-to-rank**: a
//!   variable-count all-gather of coordinates
//!   ([`mpi_sim::Comm::all_gather_varcount`]) lets every rank compute
//!   the new RCB partition redundantly and deterministically, after
//!   which each rank ships *only the particles whose ownership
//!   changed* through a personalized exchange
//!   ([`mpi_sim::Comm::exchange`]). The driver never touches particle
//!   data — its gather bytes are zero by construction — and the
//!   migration epoch's one-sided traffic is drained into its own
//!   [`MigrationReport`], keeping migration bytes a separate phase in
//!   the traffic accounting;
//! - [`FieldSession::snapshot`] is the opt-in channel that *does*
//!   gather the resident state back (for checkpoints and tests).
//!
//! Per-particle *auxiliary columns* (velocities, inertial masses,
//! cached accelerations — whatever the driver registers at launch)
//! migrate with their particles, which is what lets a time integrator
//! keep its whole mechanical state resident across steps.
//!
//! Determinism: ranks reconstruct the global particle set in global-id
//! order before running RCB, so the partition every rank computes is
//! bit-identical to the one a driver-side
//! [`DistConfig::partition`] over the same positions would produce
//! (flat RCB, or the two-level node×GPU split when the config sets
//! `gpus_per_node > 1`) —
//! resident local sets (kept sorted by global id) therefore match the
//! respawn path's `partition_particles` output exactly, and a
//! persistent run reproduces the respawn trajectory bitwise.

use std::sync::Arc;

use parking_lot::Mutex;

use bltc_core::field::FieldResult;
use bltc_core::kernel::GradientKernel;
use bltc_core::particles::ParticleSet;
use mpi_sim::runtime::TrafficMatrix;
use mpi_sim::{Comm, EpochReport, Session};
use rcb::{partition_particles, RcbPartition};

use crate::{eval_field_rank, DistConfig, RankReport};

/// One rank's resident state: the particles it owns, kept sorted by
/// ascending global id (the same order `partition_particles` produces,
/// which is what makes persistent and respawn runs bitwise comparable).
#[derive(Debug, Clone)]
pub struct RankLocal {
    /// Global particle ids, ascending.
    pub ids: Vec<usize>,
    /// Positions and kernel weights — the field-evaluation input.
    pub ps: ParticleSet,
    /// Caller-registered per-particle attribute columns (`aux[c][i]` is
    /// column `c` of local particle `i`); they migrate with their
    /// particles.
    pub aux: Vec<Vec<f64>>,
    /// The last epoch's field values in local order, if an evaluation
    /// has run since the last migration.
    pub field: Option<FieldResult>,
}

/// Phase clocks and per-rank reports of one field-evaluation epoch —
/// a [`crate::DistFieldReport`] without the global field (the field
/// stays resident on the ranks).
#[derive(Debug, Clone)]
pub struct SessionFieldReport {
    /// Per-rank reports, indexed by rank.
    pub ranks: Vec<RankReport>,
    /// One-sided traffic of this epoch only.
    pub traffic: TrafficMatrix,
    /// Bulk-synchronous setup seconds: max over ranks.
    pub setup_s: f64,
    /// Bulk-synchronous precompute seconds: max over ranks.
    pub precompute_s: f64,
    /// Bulk-synchronous compute seconds: max over ranks.
    pub compute_s: f64,
    /// Modeled epoch seconds: max over ranks of the per-rank totals.
    pub total_s: f64,
    /// Pipelined epoch seconds: max over ranks of the per-rank
    /// critical paths (`≤ total_s`) — the session epochs expose the
    /// same overlap-aware clock as the one-shot pipelines.
    pub pipelined_s: f64,
    /// Trace spans drained from the world for this epoch (rank-major;
    /// each rank's phase DAG starting at epoch-relative time 0). Empty
    /// when [`FieldSession::set_tracing`] has turned collection off.
    pub spans: Vec<bltc_trace::Span>,
    /// Session epoch index this evaluation ran as.
    pub epoch: u64,
}

/// What one rank did during a migration epoch. All tallies are counted
/// at the collective call sites and reconcile exactly against the
/// epoch's [`TrafficMatrix`]:
/// `Σ_ranks (gather_bytes + sent_bytes) == traffic.total_remote_bytes()`
/// (gather traffic is recorded pull-style with the receiver as origin,
/// exchange traffic push-style with the sender as origin).
#[derive(Debug, Clone, Copy)]
pub struct MigrationRankStats {
    /// Rank id.
    pub rank: usize,
    /// Particles owned before the repartition.
    pub n_before: usize,
    /// Particles owned after the migration.
    pub n_after: usize,
    /// Remote contributions received in the coordinate all-gather.
    pub gather_msgs: u64,
    /// Bytes of those contributions (4 `f64` per remote particle).
    pub gather_bytes: u64,
    /// Non-empty emigrant buckets this rank sent.
    pub sent_msgs: u64,
    /// Bytes of emigrant records sent (full record: id, position,
    /// weight, aux columns).
    pub sent_bytes: u64,
    /// Particles this rank emigrated.
    pub sent_particles: u64,
    /// Particles this rank received.
    pub recv_particles: u64,
}

/// Driver-side report of one [`FieldSession::migrate`] epoch.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Per-rank migration statistics, indexed by rank.
    pub ranks: Vec<MigrationRankStats>,
    /// The migration epoch's traffic — a phase of its own, never mixed
    /// with evaluation-epoch LET traffic.
    pub traffic: TrafficMatrix,
    /// Total particles that changed owner.
    pub migrated_particles: u64,
    /// Total bytes of migrated records (the delta payload).
    pub migrated_bytes: u64,
    /// Total bytes of the rank-to-rank coordinate gather.
    pub gather_bytes: u64,
    /// Modeled bytes a *full* repartition exchange would have moved:
    /// every rank fetching every remote rank's complete records
    /// (id + position + weight + aux) instead of only the deltas.
    /// Migration is the win exactly when
    /// `gather_bytes + migrated_bytes < full_exchange_bytes`.
    pub full_exchange_bytes: u64,
    /// Modeled host seconds: the redundant per-rank RCB (bulk
    /// synchronous, so the max equals the single-rank cost).
    pub host_s: f64,
    /// Modeled communication seconds: α–β over the slowest rank's
    /// gather + exchange traffic.
    pub comm_s: f64,
    /// Session epoch index the migration ran as.
    pub epoch: u64,
}

impl MigrationReport {
    /// Total modeled seconds of the migration epoch.
    pub fn total_s(&self) -> f64 {
        self.host_s + self.comm_s
    }
}

/// Driver-side snapshot of the resident state, assembled back into
/// global particle order — the opt-in gather channel.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Positions and kernel weights in global order.
    pub ps: ParticleSet,
    /// Auxiliary columns in global order.
    pub aux: Vec<Vec<f64>>,
    /// Current ownership: `ownership[r]` is rank `r`'s ascending global
    /// ids (the persistent analogue of `RcbPartition::part_indices`).
    pub ownership: Vec<Vec<usize>>,
}

/// A persistent distributed field session: live ranks, resident
/// particles, epoch-based evaluation, and delta migration. See the
/// module docs for the lifecycle.
pub struct FieldSession {
    session: Session,
    cfg: DistConfig,
    slots: Arc<Vec<Mutex<RankLocal>>>,
    n_global: usize,
    aux_cols: usize,
}

impl FieldSession {
    /// Compute the initial RCB partition of `ps`, distribute each part
    /// (plus its slice of every `aux` column) to its owning rank, and
    /// spawn the rank threads — the session's single thread-spawn
    /// phase.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid inputs as
    /// [`crate::run_distributed_field`], or if an `aux` column's length
    /// differs from the particle count.
    pub fn launch(ps: &ParticleSet, aux: &[Vec<f64>], ranks: usize, cfg: &DistConfig) -> Self {
        Self::launch_reusing(ps, aux, ranks, cfg, None, None)
    }

    /// [`FieldSession::launch`] with two optional shortcuts a warm-world
    /// cache can supply:
    ///
    /// - `session`: a live world checked out of a pool (e.g.
    ///   [`mpi_sim::SessionPool`]) instead of spawning rank threads —
    ///   the session must have exactly `ranks` ranks and must not be
    ///   poisoned. Everything rank-resident is rebuilt from `ps`/`aux`,
    ///   so a recycled world carries **no** state from its previous
    ///   tenant; only the thread spawn is skipped.
    /// - `part`: a previously computed initial RCB partition of *these
    ///   same positions* — skips the driver-side `cfg.partition` call.
    ///   RCB is deterministic in the positions, so a cached partition is
    ///   bitwise identical to a recomputed one; the caller is
    ///   responsible for keying the cache on the inputs.
    ///
    /// Both `None` makes this exactly [`FieldSession::launch`].
    ///
    /// # Panics
    ///
    /// Panics on the same invalid inputs as [`FieldSession::launch`],
    /// on a session whose rank count differs from `ranks` or that is
    /// poisoned, or on a partition whose shape does not cover
    /// `ps`/`ranks`.
    pub fn launch_reusing(
        ps: &ParticleSet,
        aux: &[Vec<f64>],
        ranks: usize,
        cfg: &DistConfig,
        session: Option<Session>,
        part: Option<&RcbPartition>,
    ) -> Self {
        assert!(ranks >= 1, "need at least one rank");
        assert!(!ps.is_empty(), "cannot distribute an empty particle set");
        assert!(
            ranks <= ps.len(),
            "more ranks ({ranks}) than particles ({})",
            ps.len()
        );
        cfg.params.validate();
        for (c, col) in aux.iter().enumerate() {
            assert_eq!(
                col.len(),
                ps.len(),
                "aux column {c} does not cover the particle set"
            );
        }

        let computed;
        let part = match part {
            Some(p) => {
                assert_eq!(
                    p.assignment.len(),
                    ps.len(),
                    "cached partition does not cover the particle set"
                );
                assert_eq!(
                    p.part_indices.len(),
                    ranks,
                    "cached partition has the wrong rank count"
                );
                p
            }
            None => {
                computed = cfg.partition(ps, ranks);
                &computed
            }
        };
        let locals = partition_particles(ps, part);
        let slots: Vec<Mutex<RankLocal>> = part
            .part_indices
            .iter()
            .zip(locals)
            .map(|(ids, local)| {
                let aux_local: Vec<Vec<f64>> = aux
                    .iter()
                    .map(|col| ids.iter().map(|&i| col[i]).collect())
                    .collect();
                Mutex::new(RankLocal {
                    ids: ids.clone(),
                    ps: local,
                    aux: aux_local,
                    field: None,
                })
            })
            .collect();

        let session = match session {
            Some(s) => {
                assert_eq!(
                    s.size(),
                    ranks,
                    "reused session has {} ranks, job needs {ranks}",
                    s.size()
                );
                assert!(!s.is_poisoned(), "cannot reuse a poisoned session");
                s
            }
            None => Session::spawn(ranks),
        };

        Self {
            session,
            cfg: *cfg,
            slots: Arc::new(slots),
            n_global: ps.len(),
            aux_cols: aux.len(),
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.session.size()
    }

    /// Global particle count (conserved by migration).
    pub fn n_global(&self) -> usize {
        self.n_global
    }

    /// Number of auxiliary columns registered at launch.
    pub fn aux_cols(&self) -> usize {
        self.aux_cols
    }

    /// Epochs completed so far (evaluations + migrations + custom).
    pub fn epochs_run(&self) -> u64 {
        self.session.epochs_run()
    }

    /// The distributed configuration shared by every epoch.
    pub fn config(&self) -> &DistConfig {
        &self.cfg
    }

    /// Whether a rank panic has poisoned the underlying world (see
    /// [`mpi_sim::Session::is_poisoned`]). A poisoned session must not
    /// be recycled to another tenant.
    pub fn is_poisoned(&self) -> bool {
        self.session.is_poisoned()
    }

    /// Enable or disable trace-span collection on the underlying world
    /// (see [`mpi_sim::Session::set_tracing`]). Observational only:
    /// fields, trajectories, traffic, and all modeled clocks are
    /// bitwise identical either way.
    pub fn set_tracing(&self, enabled: bool) {
        self.session.set_tracing(enabled);
    }

    /// Whether span collection is currently enabled.
    pub fn tracing_enabled(&self) -> bool {
        self.session.tracing_enabled()
    }

    /// Attach (or detach) a deterministic fault timeline on the
    /// underlying world (see [`mpi_sim::Session::set_chaos`]). Every
    /// epoch this session runs — evaluation, migration, snapshot —
    /// passes through the schedule's injection points.
    pub fn set_chaos(&self, schedule: Option<std::sync::Arc<mpi_sim::ChaosSchedule>>) {
        self.session.set_chaos(schedule);
    }

    /// The attached fault timeline, if any.
    pub fn chaos(&self) -> Option<std::sync::Arc<mpi_sim::ChaosSchedule>> {
        self.session.chaos()
    }

    /// Arm (or disarm) the epoch watchdog on the underlying session
    /// (see [`mpi_sim::Session::set_deadline`]): a rank that never
    /// reports becomes a poisoned world instead of a hung driver.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Duration>) {
        self.session.set_deadline(deadline);
    }

    /// How many times the epoch watchdog has fired on this session.
    pub fn watchdog_fires(&self) -> u64 {
        self.session.watchdog_fires()
    }

    /// Tear down the driver-side state and hand the live world back —
    /// the return half of warm-world reuse. The resident slots are
    /// dropped; the rank threads stay up for the next
    /// [`FieldSession::launch_reusing`].
    pub fn into_session(self) -> Session {
        self.session
    }

    /// Run a caller-defined epoch against the live ranks: `f` executes
    /// SPMD-style on every rank with exclusive access to that rank's
    /// resident [`RankLocal`]. This is the hook a time integrator uses
    /// for rank-local updates (kicks, drifts) and reductions (energy
    /// sums) without any particle data leaving the ranks.
    pub fn run_epoch<R, F>(&mut self, f: F) -> EpochReport<R>
    where
        R: Send + 'static,
        F: Fn(&Comm, &mut RankLocal) -> R + Send + Sync + 'static,
    {
        let slots = Arc::clone(&self.slots);
        self.session.run_epoch(move |comm| {
            let mut slot = slots[comm.rank()].lock();
            f(comm, &mut slot)
        })
    }

    /// Evaluate the distributed field at the resident positions as one
    /// epoch — the persistent re-entry of
    /// [`crate::run_distributed_field_on`]. Windows are exposed for the
    /// epoch, LETs rebuilt, and each rank's [`FieldResult`] is stored
    /// into its [`RankLocal::field`]; only phase clocks and tallies
    /// return to the driver.
    pub fn eval_field(&mut self, kernel: &Arc<dyn GradientKernel>) -> SessionFieldReport {
        let slots = Arc::clone(&self.slots);
        let cfg = self.cfg;
        let kernel = Arc::clone(kernel);
        let er = self.session.run_epoch(move |comm| {
            let mut slot = slots[comm.rank()].lock();
            let (report, field) = eval_field_rank(comm, &slot.ps, &cfg, &*kernel);
            slot.field = Some(field);
            report
        });
        let fmax = |f: &dyn Fn(&RankReport) -> f64| er.results.iter().map(f).fold(0.0, f64::max);
        SessionFieldReport {
            setup_s: fmax(&|r| r.setup_total()),
            precompute_s: fmax(&|r| r.precompute_s),
            compute_s: fmax(&|r| r.compute_s),
            total_s: fmax(&|r| r.total()),
            pipelined_s: fmax(&|r| r.pipelined_s()),
            ranks: er.results,
            traffic: er.traffic,
            spans: er.spans,
            epoch: er.epoch,
        }
    }

    /// Repartition and migrate as one epoch: gather coordinates
    /// rank-to-rank, recompute the RCB partition redundantly on every
    /// rank, then exchange **only** the particles whose ownership
    /// changed. Resident slots end sorted by global id and any cached
    /// field is invalidated.
    pub fn migrate(&mut self) -> MigrationReport {
        let slots = Arc::clone(&self.slots);
        let n_global = self.n_global;
        let aux_cols = self.aux_cols;
        let cfg = self.cfg;
        let er = self.session.run_epoch(move |comm| {
            let mut slot = slots[comm.rank()].lock();
            migrate_rank(comm, &mut slot, n_global, aux_cols, &cfg)
        });

        let stats = er.results;
        let record_bytes = ((5 + self.aux_cols) * 8) as u64;
        let migrated_particles: u64 = stats.iter().map(|s| s.sent_particles).sum();
        let migrated_bytes: u64 = stats.iter().map(|s| s.sent_bytes).sum();
        let gather_bytes: u64 = stats.iter().map(|s| s.gather_bytes).sum();
        // Full-exchange baseline: every rank fetches every remote
        // rank's complete records (as a from-scratch redistribution
        // over the same collectives would).
        let full_exchange_bytes: u64 = stats
            .iter()
            .map(|s| (self.n_global - s.n_before) as u64 * record_bytes)
            .sum();
        let comm_s = stats
            .iter()
            .map(|s| {
                self.cfg
                    .net
                    .seconds_for(s.gather_msgs + s.sent_msgs, s.gather_bytes + s.sent_bytes)
            })
            .fold(0.0, f64::max);
        MigrationReport {
            ranks: stats,
            traffic: er.traffic,
            migrated_particles,
            migrated_bytes,
            gather_bytes,
            full_exchange_bytes,
            host_s: self
                .cfg
                .host
                .repartition_seconds(self.n_global, self.ranks()),
            comm_s,
            epoch: er.epoch,
        }
    }

    /// Gather the resident state back to the driver in global order —
    /// the explicit snapshot channel (checkpoints, trajectory
    /// comparisons). Everything else in the session keeps particle data
    /// on the ranks.
    pub fn snapshot(&mut self) -> Snapshot {
        let er =
            self.run_epoch(|_comm, slot| (slot.ids.clone(), slot.ps.clone(), slot.aux.clone()));
        let n = self.n_global;
        let (mut x, mut y, mut z, mut q) = (vec![0.0; n], vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let mut aux = vec![vec![0.0; n]; self.aux_cols];
        let mut ownership = Vec::with_capacity(er.results.len());
        for (ids, ps, aux_local) in er.results {
            for (i, &id) in ids.iter().enumerate() {
                x[id] = ps.x[i];
                y[id] = ps.y[i];
                z[id] = ps.z[i];
                q[id] = ps.q[i];
                for (c, col) in aux_local.iter().enumerate() {
                    aux[c][id] = col[i];
                }
            }
            ownership.push(ids);
        }
        Snapshot {
            ps: ParticleSet::new(x, y, z, q),
            aux,
            ownership,
        }
    }
}

/// The rank-level migration body. See [`FieldSession::migrate`].
fn migrate_rank(
    comm: &Comm,
    slot: &mut RankLocal,
    n_global: usize,
    aux_cols: usize,
    cfg: &DistConfig,
) -> MigrationRankStats {
    let rank = comm.rank();
    let ranks = comm.size();
    let n_before = slot.ids.len();

    // ---- 1. rank-to-rank coordinate gather (MPI_Allgatherv) ---------
    let mut coords = Vec::with_capacity(n_before * 4);
    for i in 0..n_before {
        coords.extend_from_slice(&[slot.ids[i] as f64, slot.ps.x[i], slot.ps.y[i], slot.ps.z[i]]);
    }
    let gathered = comm.all_gather_varcount(coords);
    let mut gather_msgs = 0u64;
    let mut gather_bytes = 0u64;
    for (t, buf) in gathered.iter().enumerate() {
        if t != rank && !buf.is_empty() {
            gather_msgs += 1;
            gather_bytes += (buf.len() * 8) as u64;
        }
    }

    // ---- 2. redundant deterministic RCB over the global set ---------
    // Reconstructing in global-id order makes every rank's partition
    // bit-identical to a driver-side `DistConfig::partition` of the same
    // positions (RCB reads positions only, so weights stay zero here) —
    // including the two-level node×GPU split when `gpus_per_node > 1`.
    let (mut gx, mut gy, mut gz) = (
        vec![0.0; n_global],
        vec![0.0; n_global],
        vec![0.0; n_global],
    );
    for buf in &gathered {
        for c in buf.chunks_exact(4) {
            let id = c[0] as usize;
            gx[id] = c[1];
            gy[id] = c[2];
            gz[id] = c[3];
        }
    }
    let gps = ParticleSet::new(gx, gy, gz, vec![0.0; n_global]);
    let part = cfg.partition(&gps, ranks);

    // ---- 3. ownership deltas: ship only the movers ------------------
    let w = 5 + aux_cols; // id, x, y, z, q, aux…
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); ranks];
    let mut keep = Vec::with_capacity(n_before);
    for i in 0..n_before {
        let owner = part.assignment[slot.ids[i]];
        if owner == rank {
            keep.push(i);
            continue;
        }
        let b = &mut buckets[owner];
        b.push(slot.ids[i] as f64);
        b.push(slot.ps.x[i]);
        b.push(slot.ps.y[i]);
        b.push(slot.ps.z[i]);
        b.push(slot.ps.q[i]);
        for col in &slot.aux {
            b.push(col[i]);
        }
    }
    let sent_particles: u64 = buckets.iter().map(|b| (b.len() / w) as u64).sum();
    let sent_msgs = buckets
        .iter()
        .enumerate()
        .filter(|(t, b)| *t != rank && !b.is_empty())
        .count() as u64;
    let sent_bytes: u64 = buckets
        .iter()
        .enumerate()
        .filter(|(t, _)| *t != rank)
        .map(|(_, b)| (b.len() * 8) as u64)
        .sum();
    let received = comm.exchange(buckets);

    // ---- 4. rebuild the slot, sorted by global id -------------------
    let mut records: Vec<(usize, [f64; 4], Vec<f64>)> = Vec::with_capacity(keep.len());
    for &i in &keep {
        let aux_vals = slot.aux.iter().map(|col| col[i]).collect();
        records.push((
            slot.ids[i],
            [slot.ps.x[i], slot.ps.y[i], slot.ps.z[i], slot.ps.q[i]],
            aux_vals,
        ));
    }
    let mut recv_particles = 0u64;
    for buf in &received {
        for c in buf.chunks_exact(w) {
            recv_particles += 1;
            records.push((c[0] as usize, [c[1], c[2], c[3], c[4]], c[5..].to_vec()));
        }
    }
    records.sort_unstable_by_key(|r| r.0);

    let n_after = records.len();
    let mut ids = Vec::with_capacity(n_after);
    let (mut x, mut y, mut z, mut q) = (
        Vec::with_capacity(n_after),
        Vec::with_capacity(n_after),
        Vec::with_capacity(n_after),
        Vec::with_capacity(n_after),
    );
    let mut aux = vec![Vec::with_capacity(n_after); aux_cols];
    for (id, pos, aux_vals) in records {
        ids.push(id);
        x.push(pos[0]);
        y.push(pos[1]);
        z.push(pos[2]);
        q.push(pos[3]);
        for (c, v) in aux_vals.into_iter().enumerate() {
            aux[c].push(v);
        }
    }
    slot.ids = ids;
    slot.ps = ParticleSet::new(x, y, z, q);
    slot.aux = aux;
    slot.field = None; // stale after any ownership change

    MigrationRankStats {
        rank,
        n_before,
        n_after,
        gather_msgs,
        gather_bytes,
        sent_msgs,
        sent_bytes,
        sent_particles,
        recv_particles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_distributed_field_on;
    use bltc_core::config::BltcParams;
    use bltc_core::kernel::Coulomb;
    use rcb::rcb_partition;

    fn cfg() -> DistConfig {
        DistConfig::comet(BltcParams::new(0.8, 3, 60, 60))
    }

    fn kernel() -> Arc<dyn GradientKernel> {
        Arc::new(Coulomb)
    }

    #[test]
    fn session_eval_matches_respawn_pipeline_bitwise() {
        let ps = ParticleSet::random_cube(700, 11);
        let c = cfg();
        let part = rcb_partition(&ps, 3, None);
        let respawn = run_distributed_field_on(&ps, &part, &c, &Coulomb);

        let mut fs = FieldSession::launch(&ps, &[], 3, &c);
        let rep = fs.eval_field(&kernel());
        // Same traffic, same clocks, same per-rank tallies.
        assert_eq!(
            rep.traffic.total_remote_bytes(),
            respawn.traffic.total_remote_bytes()
        );
        assert_eq!(rep.total_s, respawn.total_s);
        assert_eq!(rep.pipelined_s, respawn.pipelined_s);
        assert!(rep.pipelined_s <= rep.total_s);
        // The resident fields, scattered by id, equal the respawn
        // pipeline's global assembly bitwise.
        let er =
            fs.run_epoch(|_c, slot| (slot.ids.clone(), slot.field.clone().expect("evaluated")));
        for (ids, field) in er.results {
            for (i, &id) in ids.iter().enumerate() {
                assert_eq!(field.potentials[i], respawn.field.potentials[id]);
                assert_eq!(field.gx[i], respawn.field.gx[id]);
                assert_eq!(field.gy[i], respawn.field.gy[id]);
                assert_eq!(field.gz[i], respawn.field.gz[id]);
            }
        }
    }

    #[test]
    fn migration_with_static_positions_moves_nothing() {
        let ps = ParticleSet::random_cube(400, 5);
        let mut fs = FieldSession::launch(&ps, &[], 4, &cfg());
        let mig = fs.migrate();
        assert_eq!(mig.migrated_particles, 0, "same positions, same RCB");
        assert_eq!(mig.migrated_bytes, 0);
        assert!(mig.gather_bytes > 0, "the coordinate gather still runs");
        assert!(mig.full_exchange_bytes > mig.gather_bytes + mig.migrated_bytes);
    }

    #[test]
    fn migration_follows_a_position_shuffle() {
        // Drag a block of particles across the domain, migrate, and
        // check ownership equals a fresh driver-side RCB bitwise while
        // the global multiset is preserved.
        let ps = ParticleSet::random_cube(600, 9);
        let vx: Vec<f64> = (0..600).map(|i| i as f64).collect();
        let mut fs = FieldSession::launch(&ps, std::slice::from_ref(&vx), 3, &cfg());
        fs.run_epoch(|_c, slot| {
            for i in 0..slot.ps.len() {
                // Deterministic per-id displacement, rank-independent.
                let id = slot.ids[i] as f64;
                slot.ps.x[i] += (id * 0.7).sin();
                slot.ps.y[i] -= (id * 0.3).cos() * 0.5;
            }
        });
        let mig = fs.migrate();
        assert!(mig.migrated_particles > 0, "the shuffle must move owners");

        let snap = fs.snapshot();
        // Fresh RCB over the snapshot positions = the session ownership.
        let fresh = rcb_partition(&snap.ps, 3, None);
        assert_eq!(snap.ownership, fresh.part_indices, "ownership bitwise");
        // Multiset preserved: aux column still carries id-tagged values.
        for (id, v) in snap.aux[0].iter().enumerate() {
            assert_eq!(*v, vx[id], "aux for particle {id} migrated intact");
        }
        // Per-rank tallies reconcile exactly against the epoch matrix.
        let tallied_bytes: u64 = mig
            .ranks
            .iter()
            .map(|s| s.gather_bytes + s.sent_bytes)
            .sum();
        let tallied_msgs: u64 = mig.ranks.iter().map(|s| s.gather_msgs + s.sent_msgs).sum();
        assert_eq!(tallied_bytes, mig.traffic.total_remote_bytes());
        assert_eq!(tallied_msgs, mig.traffic.total_remote_messages());
        // Sent == received globally.
        let recv: u64 = mig.ranks.iter().map(|s| s.recv_particles).sum();
        assert_eq!(recv, mig.migrated_particles);
    }

    #[test]
    fn relaunch_on_recycled_session_is_bitwise_identical() {
        // Checkout → launch → eval → into_session → relaunch with the
        // same inputs (and a cached partition) must reproduce the
        // fresh-launch field and traffic bitwise: world reuse skips the
        // thread spawn and the driver-side RCB, nothing numeric.
        let ps = ParticleSet::random_cube(500, 21);
        let c = cfg();

        let mut fresh = FieldSession::launch(&ps, &[], 3, &c);
        let fresh_rep = fresh.eval_field(&kernel());
        let fresh_fields = fresh
            .run_epoch(|_c, slot| slot.field.clone().expect("evaluated"))
            .results;

        let part = c.partition(&ps, 3);
        let recycled = fresh.into_session();
        let mut reused = FieldSession::launch_reusing(&ps, &[], 3, &c, Some(recycled), Some(&part));
        let reused_rep = reused.eval_field(&kernel());
        let reused_fields = reused
            .run_epoch(|_c, slot| slot.field.clone().expect("evaluated"))
            .results;

        assert_eq!(
            reused_rep.traffic.total_remote_bytes(),
            fresh_rep.traffic.total_remote_bytes()
        );
        assert_eq!(reused_rep.total_s, fresh_rep.total_s);
        for (a, b) in fresh_fields.iter().zip(&reused_fields) {
            assert_eq!(a.potentials, b.potentials);
            assert_eq!(a.gx, b.gx);
            assert_eq!(a.gy, b.gy);
            assert_eq!(a.gz, b.gz);
        }
        // Epoch counters persist across the relaunch (same live world).
        assert!(reused.epochs_run() > 2, "recycled world kept its history");
    }

    #[test]
    fn reusing_a_wrong_sized_session_is_rejected() {
        let ps = ParticleSet::random_cube(100, 3);
        let c = cfg();
        let s = Session::spawn(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            FieldSession::launch_reusing(&ps, &[], 3, &c, Some(s), None)
        }));
        assert!(r.is_err(), "2-rank world cannot serve a 3-rank job");
    }

    #[test]
    fn aux_columns_are_validated() {
        let ps = ParticleSet::random_cube(50, 2);
        let bad = vec![vec![0.0; 49]];
        let r = std::panic::catch_unwind(|| FieldSession::launch(&ps, &bad, 2, &cfg()));
        assert!(r.is_err(), "short aux column must be rejected");
    }
}
