//! Locally essential tree (LET) construction over passive-target RMA
//! (§3.1).
//!
//! Each rank exposes three windows: its source-tree **skeleton** (node
//! metadata), its tree-ordered **particles**, and its per-cluster
//! **modified charges**. A rank then builds the LET for every remote
//! rank completely asynchronously: it fetches the skeleton with one
//! one-sided get, runs the *local* batch-MAC traversal against the
//! remote node geometry, and fetches exactly the data the traversal
//! demands — modified charges for MAC-accepted clusters, raw particles
//! for near/undersized clusters. No remote rank takes any action.

use std::collections::BTreeMap;

use rayon::prelude::*;

use bltc_core::config::BltcParams;
use bltc_core::cost::OpCounts;
use bltc_core::geometry::{BoundingBox, Point3};
use bltc_core::interp::tensor::TensorGrid;
use bltc_core::kernel::{GradientKernel, Kernel};
use bltc_core::mac::{Mac, MacDecision};
use bltc_core::tree::{batch::TargetBatches, ClusterNode};
use mpi_sim::Window;

/// Wire format of one source-tree node — the skeleton entry exchanged
/// during LET construction. Geometry is reduced to the bounding box;
/// center and radius are rederived exactly as `SourceTree` derives them,
/// so the remote MAC sees bit-identical geometry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeMeta {
    min: [f64; 3],
    max: [f64; 3],
    start: u32,
    end: u32,
    children: [u32; 8],
    num_children: u8,
    level: u16,
}

impl NodeMeta {
    pub(crate) fn from_node(n: &ClusterNode) -> Self {
        Self {
            min: [n.bbox.min.x, n.bbox.min.y, n.bbox.min.z],
            max: [n.bbox.max.x, n.bbox.max.y, n.bbox.max.z],
            start: n.start as u32,
            end: n.end as u32,
            children: n.children,
            num_children: n.num_children,
            level: n.level,
        }
    }

    fn to_cluster(self) -> ClusterNode {
        let bbox = BoundingBox::new(
            Point3::new(self.min[0], self.min[1], self.min[2]),
            Point3::new(self.max[0], self.max[1], self.max[2]),
        );
        ClusterNode {
            center: bbox.midpoint(),
            radius: bbox.radius(),
            bbox,
            start: self.start as usize,
            end: self.end as usize,
            children: self.children,
            num_children: self.num_children,
            level: self.level,
        }
    }
}

/// One-sided traffic this rank originated during LET construction
/// (drives the α–β network model; the runtime's global `TrafficMatrix`
/// records the same operations for the aggregate report).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CommTally {
    /// One-sided operations issued to remote ranks.
    pub messages: u64,
    /// Total remote payload bytes (skeleton + charges + particles).
    pub bytes: u64,
    /// Payload bytes that must additionally be staged onto the device
    /// (charges + particles; the skeleton stays on the host).
    pub device_bytes: u64,
}

impl CommTally {
    fn record(&mut self, bytes: u64, to_device: bool) {
        self.messages += 1;
        self.bytes += bytes;
        if to_device {
            self.device_bytes += bytes;
        }
    }
}

/// Raw particles fetched for one remote direct-interaction cluster.
pub(crate) struct RemoteParticles {
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
    q: Vec<f64>,
}

/// The locally essential view of one remote rank's tree.
pub(crate) struct RemoteLet {
    /// Reconstructed remote skeleton.
    pub nodes: Vec<ClusterNode>,
    /// Per-local-batch interaction lists against the remote tree
    /// (approx node ids, direct node ids), in batch order.
    pub per_batch: Vec<(Vec<u32>, Vec<u32>)>,
    /// Fetched modified charges of MAC-accepted clusters.
    pub qhat: BTreeMap<u32, Vec<f64>>,
    /// Proxy grids of MAC-accepted clusters (derived locally from the
    /// skeleton geometry — grids travel for free).
    pub grids: BTreeMap<u32, TensorGrid>,
    /// Fetched particles of direct clusters.
    pub parts: BTreeMap<u32, RemoteParticles>,
}

impl RemoteLet {
    /// Total particles fetched from this remote rank.
    pub fn fetched_particles(&self) -> u64 {
        self.parts.values().map(|p| p.x.len() as u64).sum()
    }
}

/// Recursive batch-vs-remote-skeleton traversal — the exact dual-tree
/// descent of `bltc_core::traversal`, applied to a reconstructed remote
/// tree.
fn traverse_remote(
    mac: &Mac,
    center: Point3,
    radius: f64,
    nodes: &[ClusterNode],
    idx: usize,
    approx: &mut Vec<u32>,
    direct: &mut Vec<u32>,
) {
    let node = &nodes[idx];
    match mac.assess(&center, radius, node) {
        MacDecision::Approximate => approx.push(idx as u32),
        MacDecision::Direct => direct.push(idx as u32),
        MacDecision::Subdivide => {
            for child in node.child_indices() {
                traverse_remote(mac, center, radius, nodes, child, approx, direct);
            }
        }
    }
}

/// Build this rank's LET view of `target` rank's tree: fetch the
/// skeleton, traverse, then fetch exactly the demanded charges and
/// particles — all within passive-target epochs on `target`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_remote_let(
    target: usize,
    batches: &TargetBatches,
    params: &BltcParams,
    meta_win: &Window<NodeMeta>,
    part_win: &Window<f64>,
    qhat_win: &Window<f64>,
    m3: usize,
    tally: &mut CommTally,
) -> RemoteLet {
    // Skeleton exchange: one bulk one-sided get of the node array.
    let num_nodes = meta_win.region_len(target);
    let metas = meta_win.lock_shared(target).get(0..num_nodes);
    tally.record((num_nodes * std::mem::size_of::<NodeMeta>()) as u64, false);
    let nodes: Vec<ClusterNode> = metas.into_iter().map(NodeMeta::to_cluster).collect();

    // Local traversal against the remote skeleton: no communication —
    // one pool task per batch (the paper's OpenMP-parallel LET
    // traversal). Each batch's lists land in that batch's slot, and
    // the distinct-cluster sets are ordered (BTreeSet) and built from
    // the per-batch lists afterwards, so both the lists and the fetch
    // order below are bitwise independent of the pool size.
    let mac = Mac::new(params);
    let per_batch: Vec<(Vec<u32>, Vec<u32>)> = batches
        .batches()
        .par_iter()
        .map(|b| {
            let mut approx = Vec::new();
            let mut direct = Vec::new();
            traverse_remote(
                &mac,
                b.center,
                b.radius,
                &nodes,
                0,
                &mut approx,
                &mut direct,
            );
            (approx, direct)
        })
        .collect();
    let mut approx_set = std::collections::BTreeSet::new();
    let mut direct_set = std::collections::BTreeSet::new();
    for (approx, direct) in &per_batch {
        approx_set.extend(approx.iter().copied());
        direct_set.extend(direct.iter().copied());
    }

    // Fetch modified charges for every distinct MAC-accepted cluster
    // (one epoch, one get per cluster — the paper's LET fill).
    let mut qhat = BTreeMap::new();
    let mut grids = BTreeMap::new();
    {
        let guard = qhat_win.lock_shared(target);
        for &ni in &approx_set {
            let base = ni as usize * m3;
            qhat.insert(ni, guard.get(base..base + m3));
            tally.record((m3 * 8) as u64, true);
            grids.insert(ni, TensorGrid::new(params.degree, &nodes[ni as usize].bbox));
        }
    }

    // Fetch raw particles for every distinct direct cluster.
    let mut parts = BTreeMap::new();
    {
        let guard = part_win.lock_shared(target);
        for &ni in &direct_set {
            let node = &nodes[ni as usize];
            let flat = guard.get(4 * node.start..4 * node.end);
            tally.record((flat.len() * 8) as u64, true);
            let nc = node.end - node.start;
            let mut p = RemoteParticles {
                x: Vec::with_capacity(nc),
                y: Vec::with_capacity(nc),
                z: Vec::with_capacity(nc),
                q: Vec::with_capacity(nc),
            };
            for j in 0..nc {
                p.x.push(flat[4 * j]);
                p.y.push(flat[4 * j + 1]);
                p.z.push(flat[4 * j + 2]);
                p.q.push(flat[4 * j + 3]);
            }
            parts.insert(ni, p);
        }
    }

    RemoteLet {
        nodes,
        per_batch,
        qhat,
        grids,
        parts,
    }
}

/// Evaluate this LET's contribution to the rank's potentials.
///
/// `out` is indexed in reordered (batch) target order. The scalar math
/// mirrors `bltc_core::engine::eval_batch_into` — approximation via
/// Eq. 11 against the fetched modified charges, direct summation via
/// Eq. 9 against the fetched particles. `device_bytes` accumulates the
/// modeled per-launch memory traffic for the GPU clock.
pub(crate) fn eval_remote_into(
    let_view: &RemoteLet,
    batches: &TargetBatches,
    kernel: &dyn Kernel,
    out: &mut [f64],
    ops: &mut OpCounts,
    device_bytes: &mut f64,
) {
    let tp = batches.particles();
    // One pool task per batch: each computes this LET's contribution to
    // its own (disjoint) target range plus its op/byte tallies, starting
    // from zero. The merge below runs in fixed batch order, so both the
    // potentials and the modeled clocks are bitwise independent of the
    // pool size (the byte tallies are integer-valued f64s — exact under
    // any summation order — and the op counts are integers).
    let partial: Vec<(Vec<f64>, OpCounts, f64)> = batches
        .batches()
        .par_iter()
        .zip(&let_view.per_batch)
        .map(|(b, (approx, direct))| {
            let nb = b.num_targets();
            let mut vals = vec![0.0; nb];
            let mut bops = OpCounts::default();
            let mut bbytes = 0.0;
            for &ci in approx {
                let grid = &let_view.grids[&ci];
                let qh = &let_view.qhat[&ci];
                for (t, slot) in (b.start..b.end).zip(vals.iter_mut()) {
                    let (tx, ty, tz) = (tp.x[t], tp.y[t], tp.z[t]);
                    let mut acc = 0.0;
                    for (k, &q) in qh.iter().enumerate() {
                        let s = grid.point_linear(k);
                        acc += kernel.eval(tx - s.x, ty - s.y, tz - s.z) * q;
                    }
                    *slot += acc;
                }
                bops.approx_interactions += (nb * qh.len()) as u64;
                bops.kernel_launches += 1;
                bbytes += ((nb * 4 + qh.len() * 4) * 8) as f64;
            }
            for &ci in direct {
                let p = &let_view.parts[&ci];
                for (t, slot) in (b.start..b.end).zip(vals.iter_mut()) {
                    let (tx, ty, tz) = (tp.x[t], tp.y[t], tp.z[t]);
                    let mut acc = 0.0;
                    for j in 0..p.x.len() {
                        acc += kernel.eval(tx - p.x[j], ty - p.y[j], tz - p.z[j]) * p.q[j];
                    }
                    *slot += acc;
                }
                bops.direct_interactions += (nb * p.x.len()) as u64;
                bops.kernel_launches += 1;
                bbytes += ((nb * 4 + p.x.len() * 4) * 8) as f64;
            }
            (vals, bops, bbytes)
        })
        .collect();
    for (b, (vals, bops, bbytes)) in batches.batches().iter().zip(&partial) {
        for (slot, v) in out[b.start..b.end].iter_mut().zip(vals) {
            *slot += v;
        }
        *ops = ops.merged(bops);
        *device_bytes += bbytes;
    }
}

/// Evaluate this LET's contribution to the rank's potentials **and
/// gradients** — the field counterpart of [`eval_remote_into`].
///
/// The four output slices are indexed in reordered (batch) target order.
/// The scalar math mirrors `bltc_core::field::eval_field_batch_into`
/// applied to the fetched remote data; no RMA happens here — the LET was
/// fully fetched during setup, so gradient evaluation adds **zero**
/// communication (an invariant the test suite asserts against the
/// runtime's traffic matrix). `device_bytes` accumulates per-launch
/// memory traffic with four output arrays per target instead of one.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_remote_field_into(
    let_view: &RemoteLet,
    batches: &TargetBatches,
    kernel: &dyn GradientKernel,
    pot: &mut [f64],
    gx: &mut [f64],
    gy: &mut [f64],
    gz: &mut [f64],
    ops: &mut OpCounts,
    device_bytes: &mut f64,
) {
    let tp = batches.particles();
    // Same parallel shape as [`eval_remote_into`]: per-batch partials
    // over disjoint target ranges, merged in fixed batch order.
    type FieldPartial = ([Vec<f64>; 4], OpCounts, f64);
    let partial: Vec<FieldPartial> = batches
        .batches()
        .par_iter()
        .zip(&let_view.per_batch)
        .map(|(b, (approx, direct))| {
            let nb = b.num_targets();
            let mut vals = [vec![0.0; nb], vec![0.0; nb], vec![0.0; nb], vec![0.0; nb]];
            let mut bops = OpCounts::default();
            let mut bbytes = 0.0;
            for &ci in approx {
                let grid = &let_view.grids[&ci];
                let qh = &let_view.qhat[&ci];
                for (i, t) in (b.start..b.end).enumerate() {
                    let (tx, ty, tz) = (tp.x[t], tp.y[t], tp.z[t]);
                    let (mut p, mut ax, mut ay, mut az) = (0.0, 0.0, 0.0, 0.0);
                    for (k, &q) in qh.iter().enumerate() {
                        let s = grid.point_linear(k);
                        let (g, dgx, dgy, dgz) =
                            kernel.eval_with_grad(tx - s.x, ty - s.y, tz - s.z);
                        p += g * q;
                        ax += dgx * q;
                        ay += dgy * q;
                        az += dgz * q;
                    }
                    vals[0][i] += p;
                    vals[1][i] += ax;
                    vals[2][i] += ay;
                    vals[3][i] += az;
                }
                bops.approx_interactions += (nb * qh.len()) as u64;
                bops.kernel_launches += 1;
                bbytes += ((nb * 7 + qh.len() * 4) * 8) as f64;
            }
            for &ci in direct {
                let p = &let_view.parts[&ci];
                for (i, t) in (b.start..b.end).enumerate() {
                    let (tx, ty, tz) = (tp.x[t], tp.y[t], tp.z[t]);
                    let (mut acc, mut ax, mut ay, mut az) = (0.0, 0.0, 0.0, 0.0);
                    for j in 0..p.x.len() {
                        let (g, dgx, dgy, dgz) =
                            kernel.eval_with_grad(tx - p.x[j], ty - p.y[j], tz - p.z[j]);
                        acc += g * p.q[j];
                        ax += dgx * p.q[j];
                        ay += dgy * p.q[j];
                        az += dgz * p.q[j];
                    }
                    vals[0][i] += acc;
                    vals[1][i] += ax;
                    vals[2][i] += ay;
                    vals[3][i] += az;
                }
                bops.direct_interactions += (nb * p.x.len()) as u64;
                bops.kernel_launches += 1;
                bbytes += ((nb * 7 + p.x.len() * 4) * 8) as f64;
            }
            (vals, bops, bbytes)
        })
        .collect();
    for (b, (vals, bops, bbytes)) in batches.batches().iter().zip(&partial) {
        let r = b.start..b.end;
        for (dst, src) in [
            (&mut pot[r.clone()], &vals[0]),
            (&mut gx[r.clone()], &vals[1]),
            (&mut gy[r.clone()], &vals[2]),
            (&mut gz[r], &vals[3]),
        ] {
            for (slot, v) in dst.iter_mut().zip(src.iter()) {
                *slot += v;
            }
        }
        *ops = ops.merged(bops);
        *device_bytes += bbytes;
    }
}
