//! Locally essential tree (LET) construction over passive-target RMA
//! (§3.1).
//!
//! Each rank exposes three windows: its source-tree **skeleton** (node
//! metadata), its tree-ordered **particles**, and its per-cluster
//! **modified charges**. A rank then builds the LET for every remote
//! rank completely asynchronously: it fetches the skeleton with one
//! one-sided get, runs the *local* batch-MAC traversal against the
//! remote node geometry, and fetches exactly the data the traversal
//! demands — modified charges for MAC-accepted clusters, raw particles
//! for near/undersized clusters. No remote rank takes any action.
//!
//! Assembly is staged so a pipelined epoch can overlap the fill with
//! local work: **issue** ([`issue_remote_let`]) fetches the skeleton and
//! runs the traversal, **plan** ([`plan_chunks`]) groups the demanded
//! clusters into fetch chunks with exact per-chunk cost metadata, and
//! **land** ([`land_remote_let`]) executes the chunks' gets — in the
//! same per-cluster order the monolithic fill used, so staging changes
//! neither the fetched bytes nor the recorded traffic. The **consume**
//! stage is the unchanged evaluation ([`eval_remote_into`] /
//! [`eval_remote_field_into`]).
//!
//! Two consumption modes share those stages:
//!
//! - **Retain** ([`land_remote_let`] then `eval_remote_*`): land every
//!   chunk into one [`RemoteLet`], evaluate afterwards. Peak resident
//!   remote payload = the whole LET.
//! - **Stream** ([`stream_remote_let`] / [`stream_remote_let_field`]):
//!   land one chunk, evaluate just that chunk's clusters into persistent
//!   per-batch partials, drop the payload, land the next. Peak resident
//!   remote payload = the largest single chunk, which [`plan_chunks`]
//!   caps at the caller's byte budget — the memory-bounded mode that
//!   lets a rank's LET far exceed its staging memory.
//!
//! Both modes execute identical gets in identical order through
//! [`land_chunk`] and identical per-cluster scalar math through shared
//! helpers, so potentials, forces, op counts, and recorded traffic are
//! bitwise independent of the mode and of the budget.

use std::collections::BTreeMap;

use rayon::prelude::*;

use bltc_core::config::BltcParams;
use bltc_core::cost::OpCounts;
use bltc_core::geometry::{BoundingBox, Point3};
use bltc_core::interp::tensor::TensorGrid;
use bltc_core::kernel::{GradientKernel, Kernel};
use bltc_core::mac::{Mac, MacDecision};
use bltc_core::particles::ParticleSet;
use bltc_core::tree::{batch::TargetBatches, ClusterNode};
use mpi_sim::Window;

/// Wire format of one source-tree node — the skeleton entry exchanged
/// during LET construction. Geometry is reduced to the bounding box;
/// center and radius are rederived exactly as `SourceTree` derives them,
/// so the remote MAC sees bit-identical geometry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeMeta {
    min: [f64; 3],
    max: [f64; 3],
    start: u32,
    end: u32,
    children: [u32; 8],
    num_children: u8,
    level: u16,
}

impl NodeMeta {
    pub(crate) fn from_node(n: &ClusterNode) -> Self {
        Self {
            min: [n.bbox.min.x, n.bbox.min.y, n.bbox.min.z],
            max: [n.bbox.max.x, n.bbox.max.y, n.bbox.max.z],
            start: n.start as u32,
            end: n.end as u32,
            children: n.children,
            num_children: n.num_children,
            level: n.level,
        }
    }

    fn to_cluster(self) -> ClusterNode {
        let bbox = BoundingBox::new(
            Point3::new(self.min[0], self.min[1], self.min[2]),
            Point3::new(self.max[0], self.max[1], self.max[2]),
        );
        ClusterNode {
            center: bbox.midpoint(),
            radius: bbox.radius(),
            bbox,
            start: self.start as usize,
            end: self.end as usize,
            children: self.children,
            num_children: self.num_children,
            level: self.level,
        }
    }
}

/// One-sided traffic this rank originated during LET construction
/// (drives the α–β network model; the runtime's global `TrafficMatrix`
/// records the same operations for the aggregate report).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CommTally {
    /// One-sided operations issued to remote ranks.
    pub messages: u64,
    /// Total remote payload bytes (skeleton + charges + particles).
    pub bytes: u64,
    /// Payload bytes that must additionally be staged onto the device
    /// (charges + particles; the skeleton stays on the host).
    pub device_bytes: u64,
}

impl CommTally {
    fn record(&mut self, bytes: u64, to_device: bool) {
        self.messages += 1;
        self.bytes += bytes;
        if to_device {
            self.device_bytes += bytes;
        }
    }
}

/// Raw particles fetched for one remote direct-interaction cluster.
pub(crate) struct RemoteParticles {
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
    q: Vec<f64>,
}

/// The locally essential view of one remote rank's tree.
pub(crate) struct RemoteLet {
    /// Reconstructed remote skeleton.
    pub nodes: Vec<ClusterNode>,
    /// Per-local-batch interaction lists against the remote tree
    /// (approx node ids, direct node ids), in batch order.
    pub per_batch: Vec<(Vec<u32>, Vec<u32>)>,
    /// Fetched modified charges of MAC-accepted clusters.
    pub qhat: BTreeMap<u32, Vec<f64>>,
    /// Proxy grids of MAC-accepted clusters (derived locally from the
    /// skeleton geometry — grids travel for free).
    pub grids: BTreeMap<u32, TensorGrid>,
    /// Fetched particles of direct clusters.
    pub parts: BTreeMap<u32, RemoteParticles>,
}

impl RemoteLet {
    /// Total particles fetched from this remote rank.
    pub fn fetched_particles(&self) -> u64 {
        self.parts.values().map(|p| p.x.len() as u64).sum()
    }
}

/// Recursive batch-vs-remote-skeleton traversal — the exact dual-tree
/// descent of `bltc_core::traversal`, applied to a reconstructed remote
/// tree.
fn traverse_remote(
    mac: &Mac,
    center: Point3,
    radius: f64,
    nodes: &[ClusterNode],
    idx: usize,
    approx: &mut Vec<u32>,
    direct: &mut Vec<u32>,
) {
    let node = &nodes[idx];
    match mac.assess(&center, radius, node) {
        MacDecision::Approximate => approx.push(idx as u32),
        MacDecision::Direct => direct.push(idx as u32),
        MacDecision::Subdivide => {
            for child in node.child_indices() {
                traverse_remote(mac, center, radius, nodes, child, approx, direct);
            }
        }
    }
}

/// The **issue** stage of LET assembly against one remote rank: fetch
/// the skeleton (one bulk one-sided get), run the local batch-MAC
/// traversal against it, and derive the distinct cluster sets the
/// consume stage will need — but fetch no payload data yet. What used to
/// be the front half of a monolithic `build_remote_let` now stands alone
/// so the payload gets can be issued in chunks and overlapped with local
/// work.
pub(crate) struct LetIssue {
    /// Remote rank whose tree this LET views.
    pub target: usize,
    /// Reconstructed remote skeleton.
    pub nodes: Vec<ClusterNode>,
    /// Per-local-batch interaction lists (approx ids, direct ids).
    pub per_batch: Vec<(Vec<u32>, Vec<u32>)>,
    /// Distinct MAC-accepted clusters, ascending.
    pub approx: Vec<u32>,
    /// Distinct direct clusters, ascending.
    pub direct: Vec<u32>,
    /// Payload bytes of the skeleton get (host-side metadata; never
    /// staged to the device).
    pub skeleton_bytes: u64,
}

pub(crate) fn issue_remote_let(
    target: usize,
    batches: &TargetBatches,
    params: &BltcParams,
    meta_win: &Window<NodeMeta>,
    tally: &mut CommTally,
) -> LetIssue {
    // Skeleton exchange: one bulk one-sided get of the node array.
    let num_nodes = meta_win.region_len(target);
    let metas = meta_win.lock_shared(target).get(0..num_nodes);
    let skeleton_bytes = (num_nodes * std::mem::size_of::<NodeMeta>()) as u64;
    tally.record(skeleton_bytes, false);
    let nodes: Vec<ClusterNode> = metas.into_iter().map(NodeMeta::to_cluster).collect();

    // Local traversal against the remote skeleton: no communication —
    // one pool task per batch (the paper's OpenMP-parallel LET
    // traversal). Each batch's lists land in that batch's slot, and
    // the distinct-cluster sets are ordered (BTreeSet) and built from
    // the per-batch lists afterwards, so both the lists and the fetch
    // order below are bitwise independent of the pool size.
    let mac = Mac::new(params);
    let mut per_batch: Vec<(Vec<u32>, Vec<u32>)> = batches
        .batches()
        .par_iter()
        .map(|b| {
            let mut approx = Vec::new();
            let mut direct = Vec::new();
            traverse_remote(
                &mac,
                b.center,
                b.radius,
                &nodes,
                0,
                &mut approx,
                &mut direct,
            );
            (approx, direct)
        })
        .collect();
    // Canonical per-batch order: ascending cluster id. The traversal
    // pushes ids in descent order, which is not monotone in the array
    // layout; every consumer accumulates per-cluster contributions
    // additively, so one fixed order pins the fp accumulation order —
    // and ascending id is exactly the order the streaming mode replays
    // chunk by chunk, which is what makes evaluate-and-discard bitwise
    // identical to retain-everything.
    for (approx, direct) in &mut per_batch {
        approx.sort_unstable();
        direct.sort_unstable();
    }
    let mut approx_set = std::collections::BTreeSet::new();
    let mut direct_set = std::collections::BTreeSet::new();
    for (approx, direct) in &per_batch {
        approx_set.extend(approx.iter().copied());
        direct_set.extend(direct.iter().copied());
    }

    LetIssue {
        target,
        nodes,
        per_batch,
        approx: approx_set.into_iter().collect(),
        direct: direct_set.into_iter().collect(),
        skeleton_bytes,
    }
}

/// The retained fetch schedule of one LET: what the pipelined clock
/// needs after the land stage has consumed the [`LetIssue`].
pub(crate) struct LetPlan {
    /// Remote rank this LET views.
    pub target: usize,
    /// Skeleton payload bytes (one host-side get).
    pub skeleton_bytes: u64,
    /// Payload chunks in land order.
    pub chunks: Vec<ChunkPlan>,
}

/// Which payload window a chunk's gets hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChunkKind {
    /// Modified charges of MAC-accepted clusters.
    Approx,
    /// Raw particles of direct clusters.
    Direct,
}

/// One chunk of the LET fill: a contiguous group of distinct clusters
/// whose payloads are fetched in one passive-target epoch, plus the
/// exact communication and evaluation work the chunk carries. Every
/// count is derived analytically from the interaction lists, so the
/// per-chunk costs sum to exactly the totals the serial accounting
/// records — the reconciliation the pipelined clock's tests pin.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChunkPlan {
    pub kind: ChunkKind,
    /// Start index into [`LetIssue::approx`] / [`LetIssue::direct`].
    pub first: usize,
    /// Clusters in the chunk.
    pub len: usize,
    /// One-sided gets the chunk issues (one per cluster).
    pub messages: u64,
    /// Payload bytes fetched (all staged onto the device).
    pub bytes: u64,
    /// Remote particles fetched (direct chunks; 0 for approx chunks).
    pub fetched_particles: u64,
    /// Batch–cluster kernel launches evaluating against the chunk.
    pub launches: u64,
    /// Σ batch targets over those launches.
    pub eval_targets: u64,
    /// Σ source count (proxies or particles) over those launches.
    pub eval_sources: u64,
    /// Σ targets × sources — approx or direct interactions per
    /// [`ChunkPlan::kind`].
    pub interactions: u64,
}

/// The **plan** stage: group the distinct clusters of one LET into fetch
/// chunks (approx chunks first, then direct, both ascending — the same
/// order the monolithic fill used) and precompute each chunk's
/// communication payload and evaluation work from the per-batch
/// interaction lists.
///
/// Chunk granularity obeys two caps: at most `chunk_clusters` clusters
/// per chunk, and — when `budget` is set — at most `budget` payload
/// bytes per chunk, so the streaming consumer never holds more than
/// `budget` resident remote bytes. The minimum resident unit is one
/// cluster: a cluster whose payload alone exceeds the budget still gets
/// its own (over-budget) chunk, which the caller can detect by comparing
/// the reported peak against the budget. Every emitted chunk carries at
/// least one cluster — an empty chunk would charge a shared-lock epoch
/// that fetches nothing.
pub(crate) fn plan_chunks(
    issue: &LetIssue,
    batches: &TargetBatches,
    m3: usize,
    chunk_clusters: usize,
    budget: Option<u64>,
) -> Vec<ChunkPlan> {
    // Per-cluster (launches, Σ batch targets) over the interaction lists.
    let mut approx_use: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    let mut direct_use: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for (b, (approx, direct)) in batches.batches().iter().zip(&issue.per_batch) {
        let nb = b.num_targets() as u64;
        for &ci in approx {
            let e = approx_use.entry(ci).or_insert((0, 0));
            e.0 += 1;
            e.1 += nb;
        }
        for &ci in direct {
            let e = direct_use.entry(ci).or_insert((0, 0));
            e.0 += 1;
            e.1 += nb;
        }
    }

    let chunk_clusters = chunk_clusters.max(1);
    let mut plans = Vec::new();
    for (kind, ids) in [
        (ChunkKind::Approx, &issue.approx),
        (ChunkKind::Direct, &issue.direct),
    ] {
        let mut start = 0;
        while start < ids.len() {
            let mut plan = ChunkPlan {
                kind,
                first: start,
                len: 0,
                messages: 0,
                bytes: 0,
                fetched_particles: 0,
                launches: 0,
                eval_targets: 0,
                eval_sources: 0,
                interactions: 0,
            };
            while plan.len < chunk_clusters && start + plan.len < ids.len() {
                let ci = ids[start + plan.len];
                let (src, payload, nc) = match kind {
                    ChunkKind::Approx => (m3 as u64, (m3 * 8) as u64, 0),
                    ChunkKind::Direct => {
                        let node = &issue.nodes[ci as usize];
                        let nc = (node.end - node.start) as u64;
                        (nc, nc * 4 * 8, nc)
                    }
                };
                // The first cluster is always admitted (one cluster is
                // the minimum resident unit); after that the byte budget
                // closes the chunk.
                if plan.len > 0 && budget.is_some_and(|b| plan.bytes + payload > b) {
                    break;
                }
                let (cnt, sum_nb) = match kind {
                    ChunkKind::Approx => approx_use[&ci],
                    ChunkKind::Direct => direct_use[&ci],
                };
                plan.len += 1;
                plan.messages += 1;
                plan.bytes += payload;
                plan.fetched_particles += nc;
                plan.launches += cnt;
                plan.eval_targets += sum_nb;
                plan.eval_sources += cnt * src;
                plan.interactions += sum_nb * src;
            }
            if plan.len == 0 {
                // Defensive: never emit a zero-cluster chunk — the
                // packing loop always admits at least one cluster, but a
                // regression here must not charge empty lock epochs.
                break;
            }
            start += plan.len;
            plans.push(plan);
        }
    }
    plans
}

/// Land one planned chunk: execute its per-cluster one-sided gets in
/// ascending cluster order under a single shared-lock epoch, inserting
/// the payloads into the caller's staging maps. Both the retained
/// ([`land_remote_let`]) and the streaming ([`stream_remote_let`])
/// assemblies go through this one implementation, so their recorded
/// traffic and fetched bytes are identical by construction.
#[allow(clippy::too_many_arguments)]
fn land_chunk(
    issue: &LetIssue,
    plan: &ChunkPlan,
    part_win: &Window<f64>,
    qhat_win: &Window<f64>,
    m3: usize,
    params: &BltcParams,
    tally: &mut CommTally,
    qhat: &mut BTreeMap<u32, Vec<f64>>,
    grids: &mut BTreeMap<u32, TensorGrid>,
    parts: &mut BTreeMap<u32, RemoteParticles>,
) {
    match plan.kind {
        ChunkKind::Approx => {
            let guard = qhat_win.lock_shared(issue.target);
            for &ni in &issue.approx[plan.first..plan.first + plan.len] {
                let base = ni as usize * m3;
                qhat.insert(ni, guard.get(base..base + m3));
                tally.record((m3 * 8) as u64, true);
                grids.insert(
                    ni,
                    TensorGrid::new(params.degree, &issue.nodes[ni as usize].bbox),
                );
            }
        }
        ChunkKind::Direct => {
            let guard = part_win.lock_shared(issue.target);
            for &ni in &issue.direct[plan.first..plan.first + plan.len] {
                let node = &issue.nodes[ni as usize];
                let flat = guard.get(4 * node.start..4 * node.end);
                tally.record((flat.len() * 8) as u64, true);
                let nc = node.end - node.start;
                let mut p = RemoteParticles {
                    x: Vec::with_capacity(nc),
                    y: Vec::with_capacity(nc),
                    z: Vec::with_capacity(nc),
                    q: Vec::with_capacity(nc),
                };
                for j in 0..nc {
                    p.x.push(flat[4 * j]);
                    p.y.push(flat[4 * j + 1]);
                    p.z.push(flat[4 * j + 2]);
                    p.q.push(flat[4 * j + 3]);
                }
                parts.insert(ni, p);
            }
        }
    }
}

/// The **land** stage: execute the planned chunks' one-sided gets —
/// per-cluster, in exactly the order the monolithic fill used, so the
/// recorded traffic and the fetched data are byte-identical to the
/// unchunked assembly (each chunk merely gets its own passive-target
/// epoch, which costs nothing in the α–β model). Consumes the issue
/// stage's skeleton and lists into the finished [`RemoteLet`].
pub(crate) fn land_remote_let(
    issue: LetIssue,
    plans: &[ChunkPlan],
    part_win: &Window<f64>,
    qhat_win: &Window<f64>,
    m3: usize,
    params: &BltcParams,
    tally: &mut CommTally,
) -> RemoteLet {
    let mut qhat = BTreeMap::new();
    let mut grids = BTreeMap::new();
    let mut parts = BTreeMap::new();
    for plan in plans {
        land_chunk(
            &issue, plan, part_win, qhat_win, m3, params, tally, &mut qhat, &mut grids, &mut parts,
        );
    }

    RemoteLet {
        nodes: issue.nodes,
        per_batch: issue.per_batch,
        qhat,
        grids,
        parts,
    }
}

/// One MAC-accepted cluster's contribution (Eq. 11) to a contiguous
/// target range, accumulated into `vals` (one slot per target). The
/// single implementation shared by the retained and streaming
/// evaluation paths — their bitwise identity rests on this.
fn approx_cluster_pot(
    tp: &ParticleSet,
    start: usize,
    end: usize,
    grid: &TensorGrid,
    qh: &[f64],
    kernel: &dyn Kernel,
    vals: &mut [f64],
) {
    for (t, slot) in (start..end).zip(vals.iter_mut()) {
        let (tx, ty, tz) = (tp.x[t], tp.y[t], tp.z[t]);
        let mut acc = 0.0;
        for (k, &q) in qh.iter().enumerate() {
            let s = grid.point_linear(k);
            acc += kernel.eval(tx - s.x, ty - s.y, tz - s.z) * q;
        }
        *slot += acc;
    }
}

/// One direct cluster's contribution (Eq. 9) to a contiguous target
/// range — the direct-summation counterpart of [`approx_cluster_pot`].
fn direct_cluster_pot(
    tp: &ParticleSet,
    start: usize,
    end: usize,
    p: &RemoteParticles,
    kernel: &dyn Kernel,
    vals: &mut [f64],
) {
    for (t, slot) in (start..end).zip(vals.iter_mut()) {
        let (tx, ty, tz) = (tp.x[t], tp.y[t], tp.z[t]);
        let mut acc = 0.0;
        for j in 0..p.x.len() {
            acc += kernel.eval(tx - p.x[j], ty - p.y[j], tz - p.z[j]) * p.q[j];
        }
        *slot += acc;
    }
}

/// Field counterpart of [`approx_cluster_pot`]: potential plus gradient
/// into four accumulator columns `[pot, gx, gy, gz]`.
fn approx_cluster_field(
    tp: &ParticleSet,
    start: usize,
    end: usize,
    grid: &TensorGrid,
    qh: &[f64],
    kernel: &dyn GradientKernel,
    vals: &mut [Vec<f64>; 4],
) {
    for (i, t) in (start..end).enumerate() {
        let (tx, ty, tz) = (tp.x[t], tp.y[t], tp.z[t]);
        let (mut p, mut ax, mut ay, mut az) = (0.0, 0.0, 0.0, 0.0);
        for (k, &q) in qh.iter().enumerate() {
            let s = grid.point_linear(k);
            let (g, dgx, dgy, dgz) = kernel.eval_with_grad(tx - s.x, ty - s.y, tz - s.z);
            p += g * q;
            ax += dgx * q;
            ay += dgy * q;
            az += dgz * q;
        }
        vals[0][i] += p;
        vals[1][i] += ax;
        vals[2][i] += ay;
        vals[3][i] += az;
    }
}

/// Field counterpart of [`direct_cluster_pot`].
fn direct_cluster_field(
    tp: &ParticleSet,
    start: usize,
    end: usize,
    p: &RemoteParticles,
    kernel: &dyn GradientKernel,
    vals: &mut [Vec<f64>; 4],
) {
    for (i, t) in (start..end).enumerate() {
        let (tx, ty, tz) = (tp.x[t], tp.y[t], tp.z[t]);
        let (mut acc, mut ax, mut ay, mut az) = (0.0, 0.0, 0.0, 0.0);
        for j in 0..p.x.len() {
            let (g, dgx, dgy, dgz) = kernel.eval_with_grad(tx - p.x[j], ty - p.y[j], tz - p.z[j]);
            acc += g * p.q[j];
            ax += dgx * p.q[j];
            ay += dgy * p.q[j];
            az += dgz * p.q[j];
        }
        vals[0][i] += acc;
        vals[1][i] += ax;
        vals[2][i] += ay;
        vals[3][i] += az;
    }
}

/// Evaluate this LET's contribution to the rank's potentials.
///
/// `out` is indexed in reordered (batch) target order. The scalar math
/// mirrors `bltc_core::engine::eval_batch_into` — approximation via
/// Eq. 11 against the fetched modified charges, direct summation via
/// Eq. 9 against the fetched particles. `device_bytes` accumulates the
/// modeled per-launch memory traffic for the GPU clock.
pub(crate) fn eval_remote_into(
    let_view: &RemoteLet,
    batches: &TargetBatches,
    kernel: &dyn Kernel,
    out: &mut [f64],
    ops: &mut OpCounts,
    device_bytes: &mut f64,
) {
    let tp = batches.particles();
    // One pool task per batch: each computes this LET's contribution to
    // its own (disjoint) target range plus its op/byte tallies, starting
    // from zero. The merge below runs in fixed batch order, so both the
    // potentials and the modeled clocks are bitwise independent of the
    // pool size (the byte tallies are integer-valued f64s — exact under
    // any summation order — and the op counts are integers).
    let partial: Vec<(Vec<f64>, OpCounts, f64)> = batches
        .batches()
        .par_iter()
        .zip(&let_view.per_batch)
        .map(|(b, (approx, direct))| {
            let nb = b.num_targets();
            let mut vals = vec![0.0; nb];
            let mut bops = OpCounts::default();
            let mut bbytes = 0.0;
            for &ci in approx {
                let grid = &let_view.grids[&ci];
                let qh = &let_view.qhat[&ci];
                approx_cluster_pot(tp, b.start, b.end, grid, qh, kernel, &mut vals);
                bops.approx_interactions += (nb * qh.len()) as u64;
                bops.kernel_launches += 1;
                bbytes += ((nb * 4 + qh.len() * 4) * 8) as f64;
            }
            for &ci in direct {
                let p = &let_view.parts[&ci];
                direct_cluster_pot(tp, b.start, b.end, p, kernel, &mut vals);
                bops.direct_interactions += (nb * p.x.len()) as u64;
                bops.kernel_launches += 1;
                bbytes += ((nb * 4 + p.x.len() * 4) * 8) as f64;
            }
            (vals, bops, bbytes)
        })
        .collect();
    for (b, (vals, bops, bbytes)) in batches.batches().iter().zip(&partial) {
        for (slot, v) in out[b.start..b.end].iter_mut().zip(vals) {
            *slot += v;
        }
        *ops = ops.merged(bops);
        *device_bytes += bbytes;
    }
}

/// Evaluate this LET's contribution to the rank's potentials **and
/// gradients** — the field counterpart of [`eval_remote_into`].
///
/// The four output slices are indexed in reordered (batch) target order.
/// The scalar math mirrors `bltc_core::field::eval_field_batch_into`
/// applied to the fetched remote data; no RMA happens here — the LET was
/// fully fetched during setup, so gradient evaluation adds **zero**
/// communication (an invariant the test suite asserts against the
/// runtime's traffic matrix). `device_bytes` accumulates per-launch
/// memory traffic with four output arrays per target instead of one.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_remote_field_into(
    let_view: &RemoteLet,
    batches: &TargetBatches,
    kernel: &dyn GradientKernel,
    pot: &mut [f64],
    gx: &mut [f64],
    gy: &mut [f64],
    gz: &mut [f64],
    ops: &mut OpCounts,
    device_bytes: &mut f64,
) {
    let tp = batches.particles();
    // Same parallel shape as [`eval_remote_into`]: per-batch partials
    // over disjoint target ranges, merged in fixed batch order.
    type FieldPartial = ([Vec<f64>; 4], OpCounts, f64);
    let partial: Vec<FieldPartial> = batches
        .batches()
        .par_iter()
        .zip(&let_view.per_batch)
        .map(|(b, (approx, direct))| {
            let nb = b.num_targets();
            let mut vals = [vec![0.0; nb], vec![0.0; nb], vec![0.0; nb], vec![0.0; nb]];
            let mut bops = OpCounts::default();
            let mut bbytes = 0.0;
            for &ci in approx {
                let grid = &let_view.grids[&ci];
                let qh = &let_view.qhat[&ci];
                approx_cluster_field(tp, b.start, b.end, grid, qh, kernel, &mut vals);
                bops.approx_interactions += (nb * qh.len()) as u64;
                bops.kernel_launches += 1;
                bbytes += ((nb * 7 + qh.len() * 4) * 8) as f64;
            }
            for &ci in direct {
                let p = &let_view.parts[&ci];
                direct_cluster_field(tp, b.start, b.end, p, kernel, &mut vals);
                bops.direct_interactions += (nb * p.x.len()) as u64;
                bops.kernel_launches += 1;
                bbytes += ((nb * 7 + p.x.len() * 4) * 8) as f64;
            }
            (vals, bops, bbytes)
        })
        .collect();
    for (b, (vals, bops, bbytes)) in batches.batches().iter().zip(&partial) {
        let r = b.start..b.end;
        for (dst, src) in [
            (&mut pot[r.clone()], &vals[0]),
            (&mut gx[r.clone()], &vals[1]),
            (&mut gy[r.clone()], &vals[2]),
            (&mut gz[r], &vals[3]),
        ] {
            for (slot, v) in dst.iter_mut().zip(src.iter()) {
                *slot += v;
            }
        }
        *ops = ops.merged(bops);
        *device_bytes += bbytes;
    }
}

/// The **stream** mode: land each planned chunk, evaluate just that
/// chunk's clusters into persistent per-batch partials, and drop the
/// payload before landing the next — so the resident remote payload
/// never exceeds one chunk (which [`plan_chunks`] bounds by the caller's
/// byte budget).
///
/// Bitwise identity with the retained path ([`land_remote_let`] +
/// [`eval_remote_into`]) holds by construction:
///
/// * the gets run through the same [`land_chunk`], in the same order —
///   identical payloads and recorded traffic;
/// * each target slot accumulates per-cluster contributions in ascending
///   cluster id — exactly the sorted per-batch list order the retained
///   evaluation uses — into a partial that starts at zero and is merged
///   into `out` once per LET, the same single merge the retained path
///   performs per batch;
/// * op counts and modeled device bytes are integer-valued, so their
///   accumulation order cannot matter.
///
/// The batch loop runs serially: the chunk loop is the outer loop here,
/// and a serial inner loop is trivially independent of the host pool
/// size. Returns the peak resident payload bytes (the largest single
/// chunk landed).
#[allow(clippy::too_many_arguments)]
pub(crate) fn stream_remote_let(
    issue: &LetIssue,
    plans: &[ChunkPlan],
    batches: &TargetBatches,
    part_win: &Window<f64>,
    qhat_win: &Window<f64>,
    m3: usize,
    params: &BltcParams,
    tally: &mut CommTally,
    kernel: &dyn Kernel,
    out: &mut [f64],
    ops: &mut OpCounts,
    device_bytes: &mut f64,
) -> u64 {
    let tp = batches.particles();
    let mut vals: Vec<Vec<f64>> = batches
        .batches()
        .iter()
        .map(|b| vec![0.0; b.num_targets()])
        .collect();
    let mut lops = OpCounts::default();
    let mut lbytes = 0.0;
    let mut peak = 0u64;

    let mut qhat = BTreeMap::new();
    let mut grids = BTreeMap::new();
    let mut parts = BTreeMap::new();
    for plan in plans {
        land_chunk(
            issue, plan, part_win, qhat_win, m3, params, tally, &mut qhat, &mut grids, &mut parts,
        );
        peak = peak.max(plan.bytes);
        if plan.len == 0 {
            continue;
        }
        let ids = match plan.kind {
            ChunkKind::Approx => &issue.approx,
            ChunkKind::Direct => &issue.direct,
        };
        let (lo, hi) = (ids[plan.first], ids[plan.first + plan.len - 1]);
        for ((b, (approx, direct)), v) in batches
            .batches()
            .iter()
            .zip(&issue.per_batch)
            .zip(vals.iter_mut())
        {
            let nb = b.num_targets();
            let list = match plan.kind {
                ChunkKind::Approx => approx,
                ChunkKind::Direct => direct,
            };
            // The batch list is sorted ascending, so the clusters this
            // chunk holds form one contiguous run.
            let s = list.partition_point(|&c| c < lo);
            let e = list.partition_point(|&c| c <= hi);
            for &ci in &list[s..e] {
                match plan.kind {
                    ChunkKind::Approx => {
                        let grid = &grids[&ci];
                        let qh = &qhat[&ci];
                        approx_cluster_pot(tp, b.start, b.end, grid, qh, kernel, v);
                        lops.approx_interactions += (nb * qh.len()) as u64;
                        lops.kernel_launches += 1;
                        lbytes += ((nb * 4 + qh.len() * 4) * 8) as f64;
                    }
                    ChunkKind::Direct => {
                        let p = &parts[&ci];
                        direct_cluster_pot(tp, b.start, b.end, p, kernel, v);
                        lops.direct_interactions += (nb * p.x.len()) as u64;
                        lops.kernel_launches += 1;
                        lbytes += ((nb * 4 + p.x.len() * 4) * 8) as f64;
                    }
                }
            }
        }
        // Evaluate-and-discard: the payload dies here, before the next
        // chunk lands.
        qhat.clear();
        grids.clear();
        parts.clear();
    }

    for (b, v) in batches.batches().iter().zip(&vals) {
        for (slot, val) in out[b.start..b.end].iter_mut().zip(v) {
            *slot += val;
        }
    }
    *ops = ops.merged(&lops);
    *device_bytes += lbytes;
    peak
}

/// Field counterpart of [`stream_remote_let`]: memory-bounded
/// evaluate-and-discard of one LET's potential **and gradient**
/// contributions. Same structure, four accumulator columns per batch,
/// merged in the retained path's `[pot, gx, gy, gz]` per-batch order.
/// Returns the peak resident payload bytes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stream_remote_let_field(
    issue: &LetIssue,
    plans: &[ChunkPlan],
    batches: &TargetBatches,
    part_win: &Window<f64>,
    qhat_win: &Window<f64>,
    m3: usize,
    params: &BltcParams,
    tally: &mut CommTally,
    kernel: &dyn GradientKernel,
    pot: &mut [f64],
    gx: &mut [f64],
    gy: &mut [f64],
    gz: &mut [f64],
    ops: &mut OpCounts,
    device_bytes: &mut f64,
) -> u64 {
    let tp = batches.particles();
    let mut vals: Vec<[Vec<f64>; 4]> = batches
        .batches()
        .iter()
        .map(|b| {
            let nb = b.num_targets();
            [vec![0.0; nb], vec![0.0; nb], vec![0.0; nb], vec![0.0; nb]]
        })
        .collect();
    let mut lops = OpCounts::default();
    let mut lbytes = 0.0;
    let mut peak = 0u64;

    let mut qhat = BTreeMap::new();
    let mut grids = BTreeMap::new();
    let mut parts = BTreeMap::new();
    for plan in plans {
        land_chunk(
            issue, plan, part_win, qhat_win, m3, params, tally, &mut qhat, &mut grids, &mut parts,
        );
        peak = peak.max(plan.bytes);
        if plan.len == 0 {
            continue;
        }
        let ids = match plan.kind {
            ChunkKind::Approx => &issue.approx,
            ChunkKind::Direct => &issue.direct,
        };
        let (lo, hi) = (ids[plan.first], ids[plan.first + plan.len - 1]);
        for ((b, (approx, direct)), v) in batches
            .batches()
            .iter()
            .zip(&issue.per_batch)
            .zip(vals.iter_mut())
        {
            let nb = b.num_targets();
            let list = match plan.kind {
                ChunkKind::Approx => approx,
                ChunkKind::Direct => direct,
            };
            let s = list.partition_point(|&c| c < lo);
            let e = list.partition_point(|&c| c <= hi);
            for &ci in &list[s..e] {
                match plan.kind {
                    ChunkKind::Approx => {
                        let grid = &grids[&ci];
                        let qh = &qhat[&ci];
                        approx_cluster_field(tp, b.start, b.end, grid, qh, kernel, v);
                        lops.approx_interactions += (nb * qh.len()) as u64;
                        lops.kernel_launches += 1;
                        lbytes += ((nb * 7 + qh.len() * 4) * 8) as f64;
                    }
                    ChunkKind::Direct => {
                        let p = &parts[&ci];
                        direct_cluster_field(tp, b.start, b.end, p, kernel, v);
                        lops.direct_interactions += (nb * p.x.len()) as u64;
                        lops.kernel_launches += 1;
                        lbytes += ((nb * 7 + p.x.len() * 4) * 8) as f64;
                    }
                }
            }
        }
        qhat.clear();
        grids.clear();
        parts.clear();
    }

    for (b, v) in batches.batches().iter().zip(&vals) {
        let r = b.start..b.end;
        for (dst, src) in [
            (&mut pot[r.clone()], &v[0]),
            (&mut gx[r.clone()], &v[1]),
            (&mut gy[r.clone()], &v[2]),
            (&mut gz[r], &v[3]),
        ] {
            for (slot, val) in dst.iter_mut().zip(src.iter()) {
                *slot += val;
            }
        }
    }
    *ops = ops.merged(&lops);
    *device_bytes += lbytes;
    peak
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_batches() -> TargetBatches {
        let ps = ParticleSet::random_cube(64, 7);
        let params = BltcParams::new(0.7, 2, 8, 16);
        TargetBatches::build(&ps, &params)
    }

    /// A hand-built issue whose every batch demands every one of
    /// `n_approx` MAC-accepted clusters (payload `m3 * 8` bytes each).
    fn approx_issue(n_approx: usize, batches: &TargetBatches) -> LetIssue {
        let ids: Vec<u32> = (0..n_approx as u32).collect();
        LetIssue {
            target: 1,
            nodes: Vec::new(),
            per_batch: batches
                .batches()
                .iter()
                .map(|_| (ids.clone(), Vec::new()))
                .collect(),
            approx: ids,
            direct: Vec::new(),
            skeleton_bytes: 0,
        }
    }

    /// A direct-only issue with one node per cluster, `nc` particles
    /// each (payload `nc * 32` bytes per cluster).
    fn direct_issue(n_direct: usize, nc: usize, batches: &TargetBatches) -> LetIssue {
        let bbox = BoundingBox::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0));
        let nodes: Vec<ClusterNode> = (0..n_direct)
            .map(|i| ClusterNode {
                center: bbox.midpoint(),
                radius: bbox.radius(),
                bbox,
                start: i * nc,
                end: (i + 1) * nc,
                children: [0; 8],
                num_children: 0,
                level: 0,
            })
            .collect();
        let ids: Vec<u32> = (0..n_direct as u32).collect();
        LetIssue {
            target: 1,
            nodes,
            per_batch: batches
                .batches()
                .iter()
                .map(|_| (Vec::new(), ids.clone()))
                .collect(),
            approx: Vec::new(),
            direct: ids,
            skeleton_bytes: 0,
        }
    }

    #[test]
    fn exact_multiple_cluster_counts_emit_no_empty_trailing_chunk() {
        let b = tiny_batches();
        // 6 clusters at chunk size 3: exactly 2 chunks of 3 — a naive
        // split must not append a zero-cluster trailing plan that would
        // charge an empty shared-lock epoch.
        let plans = plan_chunks(&approx_issue(6, &b), &b, 27, 3, None);
        assert_eq!(plans.len(), 2);
        assert_eq!(
            plans.iter().map(|p| (p.first, p.len)).collect::<Vec<_>>(),
            vec![(0, 3), (3, 3)]
        );
        assert!(plans.iter().all(|p| p.len > 0), "no empty chunk plans");
        assert_eq!(plans.iter().map(|p| p.messages).sum::<u64>(), 6);

        // Chunk size exactly the cluster count: one full chunk.
        let plans = plan_chunks(&approx_issue(4, &b), &b, 27, 4, None);
        assert_eq!(plans.len(), 1);
        assert_eq!((plans[0].first, plans[0].len), (0, 4));
    }

    #[test]
    fn byte_budget_closes_chunks_below_the_cluster_cap() {
        let b = tiny_batches();
        // 27 * 8 = 216 bytes per approx cluster; a 500-byte budget
        // admits two per chunk even though the cluster cap allows 100.
        let plans = plan_chunks(&approx_issue(5, &b), &b, 27, 100, Some(500));
        assert_eq!(
            plans.iter().map(|p| p.len).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
        assert!(plans.iter().all(|p| p.bytes <= 500));
        assert_eq!(plans.iter().map(|p| p.messages).sum::<u64>(), 5);

        // Direct clusters: 4 particles × 32 bytes = 128 bytes each.
        let plans = plan_chunks(&direct_issue(5, 4, &b), &b, 27, 100, Some(300));
        assert_eq!(
            plans.iter().map(|p| p.len).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
        assert!(plans.iter().all(|p| p.bytes <= 300));
        assert_eq!(plans.iter().map(|p| p.fetched_particles).sum::<u64>(), 20);
    }

    #[test]
    fn oversized_single_cluster_still_gets_its_own_chunk() {
        let b = tiny_batches();
        // A 1-byte budget is below any single payload: the planner must
        // degrade to one cluster per chunk (the minimum resident unit),
        // never stall or emit empty plans.
        let plans = plan_chunks(&approx_issue(3, &b), &b, 27, 100, Some(1));
        assert_eq!(plans.len(), 3);
        assert!(plans.iter().all(|p| p.len == 1));
        assert!(plans.iter().all(|p| p.bytes == 216));
    }

    #[test]
    fn budget_never_changes_chunk_totals() {
        let b = tiny_batches();
        let issue = direct_issue(7, 3, &b);
        let base = plan_chunks(&issue, &b, 27, 4, None);
        for budget in [None, Some(u64::MAX), Some(200), Some(96), Some(1)] {
            let plans = plan_chunks(&issue, &b, 27, 4, budget);
            assert!(plans.iter().all(|p| p.len > 0));
            for field in [
                |p: &ChunkPlan| p.messages,
                |p: &ChunkPlan| p.bytes,
                |p: &ChunkPlan| p.fetched_particles,
                |p: &ChunkPlan| p.launches,
                |p: &ChunkPlan| p.eval_targets,
                |p: &ChunkPlan| p.eval_sources,
                |p: &ChunkPlan| p.interactions,
            ] {
                assert_eq!(
                    plans.iter().map(field).sum::<u64>(),
                    base.iter().map(field).sum::<u64>(),
                    "per-chunk cost totals must be budget-invariant"
                );
            }
        }
    }
}
