//! # bltc-dist — the distributed BLTC pipeline (§3.1)
//!
//! The paper's multi-GPU algorithm on the in-process SPMD runtime
//! (`mpi-sim`), the RCB partitioner (`rcb`), and the simulated GPU
//! engine (`bltc-gpu`):
//!
//! 1. **Domain decomposition** — recursive coordinate bisection assigns
//!    each rank a compact spatial region with a balanced particle count.
//! 2. **Local trees + windows** — every rank builds the source tree and
//!    modified charges for its own particles, then exposes three RMA
//!    windows: the tree *skeleton*, the tree-ordered particles, and the
//!    per-cluster modified charges.
//! 3. **Locally essential trees** — each rank, fully asynchronously,
//!    fetches remote skeletons with one-sided gets, runs its batch-MAC
//!    traversal against them, and pulls only the clusters it needs:
//!    modified charges where the MAC accepts, raw particles where it
//!    does not. This is the step the paper builds on passive-target
//!    `MPI_Win_lock`/`MPI_Get`.
//! 4. **Evaluation** — local interactions run through the simulated GPU
//!    engine (bitwise identical to the single-rank engines); remote LET
//!    contributions are added with the same scalar kernels.
//!
//! Phase times are modeled, not measured: host work through
//! [`model::HostModel`], device work through the `gpu-sim` clock, and
//! communication through the α–β model over the recorded one-sided
//! traffic — so two runs differing only in fabric produce identical
//! potentials and differ exactly in the modeled communication seconds.
//!
//! ## The pipelined epoch (phase DAG)
//!
//! Every run reports **two** clocks over the same work. The *serial*
//! clock sums the phases in the order above — setup, staging,
//! precompute, compute — exactly as the original bulk-synchronous
//! implementation would execute them. The *pipelined* clock
//! ([`RankReport::pipeline`], [`model::PipelineReport`]) reschedules
//! the identical work items as a dependency DAG over four resources:
//!
//! - the **host** builds local tree/charges/interaction lists first,
//!   then runs each LET traversal as its skeleton lands, then unpacks
//!   payload chunks;
//! - the **NIC** issues skeleton gets as soon as the windows exist and
//!   streams each LET's payload in chunks of
//!   [`DistConfig::let_chunk`] clusters (`letree`'s issue → plan →
//!   land stages) once its traversal has demanded them;
//! - the **PCIe** link stages each chunk after it lands;
//! - the **device** starts the local block (staging, precompute, local
//!   compute) the moment the local lists exist, and dispatches
//!   remote-eval kernels onto [`DistConfig::streams`] simulated
//!   streams (`gpu-sim`'s scheduler via `bltc_gpu::pipeline`) as their
//!   chunks become ready.
//!
//! This is the overlap the paper's one-sided design exists to enable:
//! LET gets hide behind local compute, and ≥2 streams hide remote
//! launch latencies behind exec phases. Execution itself is **not**
//! reordered — the same gets run in the same order, the same kernels
//! produce bitwise-identical potentials — so `pipelined_s ≤ total_s`
//! is a checkable invariant, with equality on one rank.
//!
//! ## Force fields
//!
//! Two entry points share the pipeline above:
//!
//! - [`run_distributed`] — potentials only (`&dyn Kernel`),
//! - [`run_distributed_field`] — potentials **and** 3-component
//!   gradients (`&dyn GradientKernel`), for the astrophysics / MD
//!   workloads where forces `F = -q∇φ` are the quantity of interest.
//!
//! The field path reuses the *same* LET: modified charges and fetched
//! particles differentiate for free with respect to the target, so
//! gradient evaluation adds **no** RMA traffic — only gradient-capable
//! device kernels (~4× the flops, charged to the device clock) and a 4×
//! DtH volume. Every rank's one-sided traffic is reported in
//! [`RankReport::let_messages`]/[`RankReport::let_bytes`] and must
//! reconcile exactly with the runtime's [`TrafficMatrix`] (see the
//! invariants on [`RankReport`]).
//!
//! Time-stepping drivers (`bltc-sim`) re-enter the field pipeline once
//! per step through [`run_distributed_field_on`], which accepts a
//! cached RCB partition so the domain decomposition can be refreshed on
//! a cadence instead of every step.
//!
//! ## Memory-bounded LET streaming
//!
//! By default every rank retains its whole LET (all fetched charges and
//! particles) through evaluation, so peak resident remote payload grows
//! with the surface of the rank's region — the wall between the 32-rank
//! harness and the paper's billion-particle runs. Setting
//! [`DistConfig::let_memory_budget`] switches the remote path to
//! **evaluate-and-discard streaming**: each fetch chunk (capped at the
//! budget in payload bytes) is landed in its own passive-target epoch,
//! its clusters are evaluated into persistent batch-order partials, and
//! its payload is dropped before the next chunk lands. The peak
//! resident payload — reported per rank as
//! [`RankReport::peak_let_bytes`] — is then the largest single chunk
//! instead of the whole LET.
//!
//! Streaming is **bitwise invisible** everywhere except that peak and
//! the pipelined clock's chunk granularity: the same gets run in the
//! same order (identical [`TrafficMatrix`]), and each target slot
//! accumulates the same per-cluster contributions in the same ascending
//! cluster order, so potentials, forces, trajectories, op counts, and
//! the serial phase clocks are identical at every budget, `None`
//! included (`tests/streaming.rs` pins this across budgets × rank
//! counts × pool sizes).
//!
//! ## Node×GPU hierarchy
//!
//! [`DistConfig::gpus_per_node`] `> 1` models multi-GPU nodes: the
//! decomposition becomes a two-level RCB (`rcb_partition_two_level` —
//! bisection across nodes, then across each node's GPUs, leaf rank
//! `node·g + gpu`), and every one-sided operation is priced on the link
//! its (origin, target) pair actually crosses — the PCIe/shared-memory
//! [`DistConfig::intranode_net`] when the ranks share a node, the
//! fabric [`DistConfig::net`] otherwise — in both the serial
//! `setup_comm_s` and the pipelined clock ([`DistConfig::link`]).
//! `mpi_sim::NodeMap` aggregates the recorded [`TrafficMatrix`]
//! per-node so reports can split inter- from intra-node bytes.
//!
//! ## Example
//!
//! Two simulated ranks evaluating Coulomb potentials, with the traffic
//! reconciliation every report guarantees:
//!
//! ```
//! use bltc_core::config::BltcParams;
//! use bltc_core::kernel::Coulomb;
//! use bltc_core::particles::ParticleSet;
//! use bltc_dist::{run_distributed, DistConfig};
//!
//! let ps = ParticleSet::random_cube(300, 7);
//! let cfg = DistConfig::comet(BltcParams::new(0.8, 3, 50, 50));
//! let rep = run_distributed(&ps, 2, &cfg, &Coulomb);
//!
//! assert_eq!(rep.potentials.len(), ps.len());
//! let tallied: u64 = rep.ranks.iter().map(|r| r.let_bytes).sum();
//! assert_eq!(tallied, rep.traffic.total_remote_bytes());
//! ```

mod letree;
pub mod model;
pub mod persistent;

pub use model::{ChunkClock, HostModel, PipelineReport};
pub use persistent::{
    FieldSession, MigrationRankStats, MigrationReport, RankLocal, SessionFieldReport, Snapshot,
};

use bltc_core::charges::ClusterCharges;
use bltc_core::config::BltcParams;
use bltc_core::cost::OpCounts;
use bltc_core::field::FieldResult;
use bltc_core::kernel::{GradientKernel, Kernel};
use bltc_core::particles::ParticleSet;
use bltc_core::tree::{batch::TargetBatches, SourceTree};
use bltc_gpu::{GpuEngine, GpuSimBreakdown};
use gpu_sim::DeviceSpec;
use mpi_sim::runtime::TrafficMatrix;
use mpi_sim::{run_spmd, Comm, NetworkSpec, Window};
use rcb::{partition_particles, rcb_partition, rcb_partition_two_level, RcbPartition};

use letree::{
    eval_remote_field_into, eval_remote_into, issue_remote_let, land_remote_let, plan_chunks,
    stream_remote_let, stream_remote_let_field, CommTally, LetPlan, NodeMeta, RemoteLet,
};
use model::{pipelined_clock, ChunkCost, LetFetchPlan};

/// Configuration of a distributed run: treecode parameters plus the
/// hardware models of one compute node class and its fabric.
#[derive(Debug, Clone, Copy)]
pub struct DistConfig {
    /// Treecode parameters (shared by every rank).
    pub params: BltcParams,
    /// Per-rank GPU model.
    pub spec: DeviceSpec,
    /// Interconnect model for the α–β communication clock.
    pub net: NetworkSpec,
    /// Asynchronous streams each rank cycles through.
    pub streams: usize,
    /// Host-side setup-time model.
    pub host: HostModel,
    /// Clusters per LET fetch chunk in the pipelined epoch. Chunking
    /// changes neither results nor traffic (the same per-cluster gets
    /// run in the same order); it only sets the granularity at which
    /// the pipelined clock can overlap landing data with evaluation.
    pub let_chunk: usize,
    /// Memory budget for resident remote-LET payload bytes per rank.
    ///
    /// `None` (the default) retains every LET through evaluation — peak
    /// resident payload is the whole LET. `Some(b)` switches the remote
    /// path to **streaming** (evaluate-and-discard): each fetch chunk is
    /// landed, evaluated, and dropped before the next lands, and the
    /// chunk planner additionally caps chunk payloads at `b` bytes (a
    /// single cluster whose payload alone exceeds `b` still travels as
    /// its own over-budget chunk — the minimum resident unit). Results,
    /// forces, op counts, and recorded traffic are **bitwise identical**
    /// at every budget including `None`; only
    /// [`RankReport::peak_let_bytes`] and the pipelined clock's chunk
    /// granularity respond to it.
    pub let_memory_budget: Option<u64>,
    /// GPUs (leaf ranks) per compute node of the two-level node×GPU
    /// hierarchy. `1` models the flat one-GPU-per-node world of the
    /// paper's Figs. 5–6; `g > 1` decomposes with RCB across nodes
    /// first and then across the `g` GPUs of each node, and prices
    /// one-sided traffic between ranks sharing a node with
    /// [`DistConfig::intranode_net`] instead of the fabric.
    pub gpus_per_node: usize,
    /// Interconnect model for rank pairs that share a compute node
    /// (PCIe peer-to-peer / shared-memory MPI). Only consulted when
    /// `gpus_per_node > 1`.
    pub intranode_net: NetworkSpec,
}

impl DistConfig {
    /// SDSC Comet, the paper's scaling platform (Figs. 5–6): one Tesla
    /// P100 per rank on FDR InfiniBand, flat decomposition, LETs
    /// retained in full.
    pub fn comet(params: BltcParams) -> Self {
        let spec = DeviceSpec::p100();
        Self {
            params,
            spec,
            net: NetworkSpec::infiniband_fdr(),
            streams: spec.num_streams,
            host: HostModel::default(),
            let_chunk: 32,
            let_memory_budget: None,
            gpus_per_node: 1,
            intranode_net: NetworkSpec::intranode_p2p(),
        }
    }

    /// The network model pricing a one-sided operation between two leaf
    /// ranks: the intra-node path when both live on the same compute
    /// node (`rank / gpus_per_node` agrees), the inter-node fabric
    /// otherwise. With `gpus_per_node == 1` every remote pair crosses
    /// the fabric, reproducing the flat pricing exactly.
    pub fn link(&self, origin: usize, target: usize) -> &NetworkSpec {
        let g = self.gpus_per_node.max(1);
        if g > 1 && origin / g == target / g {
            &self.intranode_net
        } else {
            &self.net
        }
    }

    /// The domain decomposition this config implies for `ranks` leaf
    /// ranks: flat RCB when `gpus_per_node == 1`, otherwise the
    /// two-level node×GPU RCB (bisection across nodes first, then
    /// across each node's GPUs; leaf rank `node · g + gpu`).
    ///
    /// # Panics
    ///
    /// With `gpus_per_node > 1`, panics unless `ranks` is a whole
    /// number of nodes.
    pub fn partition(&self, ps: &ParticleSet, ranks: usize) -> RcbPartition {
        let g = self.gpus_per_node.max(1);
        if g == 1 {
            rcb_partition(ps, ranks, None)
        } else {
            assert_eq!(
                ranks % g,
                0,
                "rank count {ranks} is not a whole number of {g}-GPU nodes"
            );
            rcb_partition_two_level(ps, ranks / g, g, None)
        }
    }
}

/// LET-construction statistics for one rank (summed over remote ranks).
#[derive(Debug, Clone, Copy, Default)]
pub struct LetStats {
    /// Remote skeleton nodes received (metadata, bounded by tree sizes).
    pub remote_skeleton_nodes: u64,
    /// Distinct remote clusters whose modified charges were fetched.
    pub remote_approx_nodes: u64,
    /// Distinct remote clusters whose raw particles were fetched.
    pub remote_direct_nodes: u64,
    /// Total remote particles fetched — the LET sparsity headline: far
    /// below the full remote particle count when the MAC is doing its
    /// job.
    pub fetched_particles: u64,
    /// Total modified charges fetched.
    pub fetched_proxy_charges: u64,
}

/// Per-rank result of a distributed run: sizes, LET statistics, exact
/// op counts, and the modeled three-phase clock.
///
/// # Traffic-accounting invariants
///
/// The per-rank tallies are not estimates; they are counted at the RMA
/// call sites and must reconcile *exactly* against the runtime's
/// [`TrafficMatrix`] (the test suites enforce this):
///
/// 1. `Σ_ranks let_messages == traffic.total_remote_messages()` and
///    `Σ_ranks let_bytes == traffic.total_remote_bytes()` — every
///    one-sided operation a rank originates targets a *remote* rank
///    (a rank never fetches its own windows), so the rank tallies and
///    the matrix's remote totals count the same set of operations.
/// 2. All RMA operations are *issued* during LET construction.
///    Evaluation — potential or gradient — adds **zero** RMA
///    operations, so a field run's matrix is per-pair identical to a
///    potential-only run on the same decomposition. (This is about
///    what traffic *exists*, not when the clock bills it: the serial
///    phases charge it all to `setup_comm_s`, while the pipelined
///    clock overlaps the same transfers with local compute.)
/// 3. The **serial** phase clocks satisfy
///    `setup_total() + precompute_s + compute_s == total()` by
///    construction (no hidden phases).
/// 4. The **pipelined** clock satisfies
///    `pipeline.pipelined_s ≤ total()`: the phase DAG reschedules
///    exactly the work the serial phases charge — it never invents or
///    drops a second — so its critical path cannot exceed the serial
///    sum, and equals it on one rank (nothing remote to overlap).
#[derive(Debug, Clone)]
pub struct RankReport {
    /// Rank id.
    pub rank: usize,
    /// Particles owned (RCB partition size).
    pub n_local: usize,
    /// Nodes in the rank's local source tree.
    pub tree_nodes: usize,
    /// Target batches on the rank.
    pub num_batches: usize,
    /// LET construction statistics.
    pub let_stats: LetStats,
    /// One-sided RMA operations this rank originated. All of a rank's
    /// communication is *issued* during LET construction; evaluation —
    /// potential or gradient — adds none, so these tallies must
    /// reconcile exactly with the run's [`TrafficMatrix`]. (Whether
    /// those transfers sit on the critical path is a separate, clock-
    /// level question: serially they are billed to `setup_comm_s`; the
    /// pipelined clock overlaps them with local compute.)
    pub let_messages: u64,
    /// Payload bytes of those one-sided operations.
    pub let_bytes: u64,
    /// Peak resident remote-LET payload bytes on this rank (modified
    /// charges + particles — the same device-staged classification the
    /// traffic tally uses; skeletons and locally derived grids are
    /// excluded). Retained mode holds every LET through evaluation, so
    /// the peak is the whole payload; streaming mode
    /// ([`DistConfig::let_memory_budget`]) holds one chunk at a time,
    /// so the peak is the largest single chunk — `≤` the budget
    /// whenever every single-cluster payload fits it.
    pub peak_let_bytes: u64,
    /// Modeled host seconds (tree/batch/list build + LET assembly).
    pub setup_host_s: f64,
    /// Modeled communication seconds (α–β over this rank's one-sided
    /// traffic).
    pub setup_comm_s: f64,
    /// Modeled staging seconds (HtD copies of sources, targets, and
    /// fetched LET data).
    pub setup_stage_s: f64,
    /// Modeled precompute seconds (modified-charge kernels + DtH to the
    /// charge windows).
    pub precompute_s: f64,
    /// Modeled compute seconds (evaluation kernels + DtH potentials).
    pub compute_s: f64,
    /// The overlap-aware clock: the critical path of the same epoch
    /// restructured as a phase DAG (LET chunks land while the local
    /// block computes; remote-eval kernels dispatch onto streams as
    /// their chunks become ready), plus per-chunk land times. Satisfies
    /// `pipeline.pipelined_s ≤ total()` (invariant 4).
    pub pipeline: PipelineReport,
    /// Exact op counts (local + remote work on this rank).
    pub ops: OpCounts,
}

impl RankReport {
    /// The paper's "setup" reporting phase: host work, communication,
    /// and data staging.
    pub fn setup_total(&self) -> f64 {
        self.setup_host_s + self.setup_comm_s + self.setup_stage_s
    }

    /// Total modeled seconds on this rank; by construction exactly
    /// `setup_total() + precompute_s + compute_s`.
    pub fn total(&self) -> f64 {
        self.setup_total() + self.precompute_s + self.compute_s
    }

    /// Critical-path seconds of the pipelined epoch; always `≤ total()`.
    pub fn pipelined_s(&self) -> f64 {
        self.pipeline.pipelined_s
    }
}

/// Aggregate result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// Potentials in the *original* (global) target order.
    pub potentials: Vec<f64>,
    /// Per-rank reports, indexed by rank.
    pub ranks: Vec<RankReport>,
    /// One-sided traffic recorded by the runtime, per (origin, target).
    pub traffic: TrafficMatrix,
    /// Bulk-synchronous setup seconds: max over ranks.
    pub setup_s: f64,
    /// Bulk-synchronous precompute seconds: max over ranks.
    pub precompute_s: f64,
    /// Bulk-synchronous compute seconds: max over ranks.
    pub compute_s: f64,
    /// Modeled run time: max over ranks of the per-rank totals (each
    /// rank's phases are serial; ranks overlap).
    pub total_s: f64,
    /// Pipelined run time: max over ranks of the per-rank critical
    /// paths (`≤ total_s`) — what the epoch costs when each rank
    /// overlaps its LET fetch with local compute and streams its
    /// remote evaluation.
    pub pipelined_s: f64,
}

impl DistReport {
    /// Exact aggregate op counts over all ranks.
    pub fn total_ops(&self) -> OpCounts {
        self.ranks
            .iter()
            .fold(OpCounts::default(), |acc, r| acc.merged(&r.ops))
    }
}

/// Aggregate result of a distributed **field** (potential + gradient)
/// run: the per-rank field results assembled back into original target
/// order, plus the same per-rank/phase/traffic accounting as
/// [`DistReport`].
///
/// The [`RankReport`] traffic-accounting invariants hold here verbatim:
/// summed per-rank `let_messages`/`let_bytes` equal the
/// [`TrafficMatrix`] remote totals, the matrix is per-pair identical to
/// a potential-only run of the same problem (gradient evaluation
/// fetches nothing extra), and time-stepping drivers may therefore
/// accumulate step matrices ([`TrafficMatrix::accumulate`]) knowing the
/// cumulative matrix still reconciles against summed rank tallies.
#[derive(Debug, Clone)]
pub struct DistFieldReport {
    /// Potentials and gradients in the *original* (global) target order.
    /// The force on charge `q_i` is `-q_i · (gx, gy, gz)[i]`.
    pub field: FieldResult,
    /// Per-rank reports, indexed by rank.
    pub ranks: Vec<RankReport>,
    /// One-sided traffic recorded by the runtime, per (origin, target).
    /// Identical to the potential-only run on the same problem: the
    /// field path fetches nothing extra.
    pub traffic: TrafficMatrix,
    /// Bulk-synchronous setup seconds: max over ranks.
    pub setup_s: f64,
    /// Bulk-synchronous precompute seconds: max over ranks.
    pub precompute_s: f64,
    /// Bulk-synchronous compute seconds: max over ranks (~4× the
    /// potential-only compute phase — gradient kernels).
    pub compute_s: f64,
    /// Modeled run time: max over ranks of the per-rank totals.
    pub total_s: f64,
    /// Pipelined run time: max over ranks of the per-rank critical
    /// paths (`≤ total_s`).
    pub pipelined_s: f64,
}

impl DistFieldReport {
    /// Exact aggregate op counts over all ranks.
    pub fn total_ops(&self) -> OpCounts {
        self.ranks
            .iter()
            .fold(OpCounts::default(), |acc, r| acc.merged(&r.ops))
    }
}

/// Object-safe delegation so `run_distributed` accepts both concrete
/// kernels (`&Coulomb`) and trait objects (`&dyn Kernel`).
struct KernelRef<'a, K: Kernel + ?Sized>(&'a K);

impl<K: Kernel + ?Sized> Kernel for KernelRef<'_, K> {
    fn eval(&self, dx: f64, dy: f64, dz: f64) -> f64 {
        self.0.eval(dx, dy, dz)
    }

    fn eval_f32(&self, dx: f32, dy: f32, dz: f32) -> f32 {
        self.0.eval_f32(dx, dy, dz)
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn flops_per_eval_cpu(&self) -> f64 {
        self.0.flops_per_eval_cpu()
    }

    fn flops_per_eval_gpu(&self) -> f64 {
        self.0.flops_per_eval_gpu()
    }
}

/// Gradient-capable delegation: a [`KernelRef`] over a gradient kernel
/// is itself a [`GradientKernel`].
impl<K: GradientKernel + ?Sized> GradientKernel for KernelRef<'_, K> {
    fn eval_with_grad(&self, dx: f64, dy: f64, dz: f64) -> (f64, f64, f64, f64) {
        self.0.eval_with_grad(dx, dy, dz)
    }

    fn grad_flops_per_eval_gpu(&self) -> f64 {
        self.0.grad_flops_per_eval_gpu()
    }

    fn grad_flops_per_eval_cpu(&self) -> f64 {
        self.0.grad_flops_per_eval_cpu()
    }
}

/// Everything one rank builds during the setup phase: local structures,
/// the three exposed RMA windows (kept alive so remote ranks can keep
/// fetching until the closing barrier), the assembled LETs, and the
/// communication tally they cost.
struct RankSetup {
    tree: SourceTree,
    batches: TargetBatches,
    /// Fully landed LETs — empty in streaming mode, where each chunk is
    /// evaluated and discarded inside [`setup_rank`] instead.
    lets: Vec<RemoteLet>,
    /// Per-LET fetch schedules (chunk metadata for the pipelined clock).
    plans: Vec<LetPlan>,
    let_stats: LetStats,
    tally: CommTally,
    /// Peak resident remote payload bytes (see
    /// [`RankReport::peak_let_bytes`]).
    peak_let_bytes: u64,
    // Held, not read: dropping a window before the final barrier would
    // tear down regions remote ranks may still be fetching from.
    _meta_win: Window<NodeMeta>,
    _part_win: Window<f64>,
    _qhat_win: Window<f64>,
}

/// Where the streaming setup accumulates remote contributions while it
/// lands-evaluates-discards each chunk: the rank's batch-order partial
/// buffers plus its remote op/byte tallies, potential or field flavor.
enum RemoteAccum<'a> {
    Potential {
        kernel: &'a dyn Kernel,
        out: &'a mut [f64],
        ops: &'a mut OpCounts,
        device_bytes: &'a mut f64,
    },
    Field {
        kernel: &'a dyn GradientKernel,
        pot: &'a mut [f64],
        gx: &'a mut [f64],
        gy: &'a mut [f64],
        gz: &'a mut [f64],
        ops: &'a mut OpCounts,
        device_bytes: &'a mut f64,
    },
}

/// Steps 2–3 of the pipeline (shared by the potential and field paths):
/// build local tree/batches/charges, expose the skeleton / particle /
/// modified-charge windows, and construct this rank's LET view of every
/// remote tree over passive-target RMA — staged as issue → plan → land
/// per remote rank, retaining each LET's chunk schedule for the
/// pipelined clock.
///
/// With `stream: None` every LET is landed whole and returned in
/// [`RankSetup::lets`] for the caller to evaluate. With `stream:
/// Some(accum)` — the memory-bounded mode the caller selects iff
/// [`DistConfig::let_memory_budget`] is set — each chunk is landed,
/// evaluated into `accum`, and discarded immediately, so no LET is ever
/// resident in full; `lets` comes back empty and the remote
/// contributions are already in the accumulator's buffers. Both modes
/// issue identical gets in identical order and record identical
/// traffic.
fn setup_rank(
    comm: &Comm,
    local: &ParticleSet,
    cfg: &DistConfig,
    mut stream: Option<RemoteAccum<'_>>,
) -> RankSetup {
    let params = &cfg.params;
    let m3 = params.proxy_count();

    // ---- local structures (host) ------------------------------------
    let tree = SourceTree::build(local, params);
    let batches = TargetBatches::build(local, params);
    let charges = ClusterCharges::compute_all(&tree, params.degree);

    // ---- expose RMA windows (collective, like MPI_Win_create) -------
    let meta: Vec<NodeMeta> = tree.nodes().iter().map(NodeMeta::from_node).collect();
    let meta_win = comm.create_window(meta);

    let tp = tree.particles();
    let mut pdata = Vec::with_capacity(tp.len() * 4);
    for j in 0..tp.len() {
        pdata.extend_from_slice(&[tp.x[j], tp.y[j], tp.z[j], tp.q[j]]);
    }
    let part_win = comm.create_window(pdata);

    let mut qdata = vec![0.0; tree.num_nodes() * m3];
    for i in 0..tree.num_nodes() {
        qdata[i * m3..(i + 1) * m3].copy_from_slice(charges.charges(i));
    }
    let qhat_win = comm.create_window(qdata);
    comm.barrier(); // all windows exposed; passive epochs may begin

    // ---- LET construction (fully one-sided, staged) -----------------
    let mut tally = CommTally::default();
    let mut lets = Vec::with_capacity(comm.size().saturating_sub(1));
    let mut plans = Vec::with_capacity(comm.size().saturating_sub(1));
    let mut let_stats = LetStats::default();
    let mut peak_let_bytes = 0u64;
    for t in 0..comm.size() {
        if t == comm.rank() {
            continue;
        }
        let issue = issue_remote_let(t, &batches, params, &meta_win, &mut tally);
        let chunks = plan_chunks(&issue, &batches, m3, cfg.let_chunk, cfg.let_memory_budget);
        let skeleton_bytes = issue.skeleton_bytes;
        if let Some(accum) = stream.as_mut() {
            // Evaluate-and-discard: the stats the retained path reads
            // off the landed LET are derived from the issue stage and
            // the chunk plans instead (same quantities by construction).
            let_stats.remote_skeleton_nodes += issue.nodes.len() as u64;
            let_stats.remote_approx_nodes += issue.approx.len() as u64;
            let_stats.remote_direct_nodes += issue.direct.len() as u64;
            let_stats.fetched_particles += chunks.iter().map(|c| c.fetched_particles).sum::<u64>();
            let_stats.fetched_proxy_charges += (issue.approx.len() * m3) as u64;
            let peak = match accum {
                RemoteAccum::Potential {
                    kernel,
                    out,
                    ops,
                    device_bytes,
                } => stream_remote_let(
                    &issue,
                    &chunks,
                    &batches,
                    &part_win,
                    &qhat_win,
                    m3,
                    params,
                    &mut tally,
                    *kernel,
                    out,
                    ops,
                    device_bytes,
                ),
                RemoteAccum::Field {
                    kernel,
                    pot,
                    gx,
                    gy,
                    gz,
                    ops,
                    device_bytes,
                } => stream_remote_let_field(
                    &issue,
                    &chunks,
                    &batches,
                    &part_win,
                    &qhat_win,
                    m3,
                    params,
                    &mut tally,
                    *kernel,
                    pot,
                    gx,
                    gy,
                    gz,
                    ops,
                    device_bytes,
                ),
            };
            peak_let_bytes = peak_let_bytes.max(peak);
        } else {
            lets.push(land_remote_let(
                issue, &chunks, &part_win, &qhat_win, m3, params, &mut tally,
            ));
        }
        plans.push(LetPlan {
            target: t,
            skeleton_bytes,
            chunks,
        });
    }
    if stream.is_none() {
        for l in &lets {
            let_stats.remote_skeleton_nodes += l.nodes.len() as u64;
            let_stats.remote_approx_nodes += l.qhat.len() as u64;
            let_stats.remote_direct_nodes += l.parts.len() as u64;
            let_stats.fetched_particles += l.fetched_particles();
            let_stats.fetched_proxy_charges += (l.qhat.len() * m3) as u64;
        }
        // Every LET stays resident through evaluation: the peak is the
        // whole device-staged payload.
        peak_let_bytes = tally.device_bytes;
    }

    RankSetup {
        tree,
        batches,
        lets,
        plans,
        let_stats,
        tally,
        peak_let_bytes,
        _meta_win: meta_win,
        _part_win: part_win,
        _qhat_win: qhat_win,
    }
}

/// Per-rank modeled phase clocks (shared by the potential and field
/// paths; the caller supplies the remote-evaluation flops, which is
/// where the ~4× gradient-kernel cost enters).
struct RankClocks {
    setup_host_s: f64,
    setup_comm_s: f64,
    setup_stage_s: f64,
    precompute_s: f64,
    compute_s: f64,
}

impl RankClocks {
    /// Serial phase sum — the clock the pipelined critical path is
    /// clamped against.
    fn total(&self) -> f64 {
        self.setup_host_s
            + self.setup_comm_s
            + self.setup_stage_s
            + self.precompute_s
            + self.compute_s
    }
}

#[allow(clippy::too_many_arguments)]
fn model_rank_clocks(
    cfg: &DistConfig,
    rank: usize,
    sim: &GpuSimBreakdown,
    local_len: usize,
    levels: usize,
    ops: &OpCounts,
    let_stats: &LetStats,
    tally: &CommTally,
    plans: &[LetPlan],
    remote_flops: f64,
    remote_device_bytes: f64,
    remote_launches: u64,
) -> RankClocks {
    let setup_host_s = cfg.host.setup_seconds(
        local_len,
        levels,
        ops.kernel_launches,
        let_stats.fetched_particles,
    );
    // Price each LET's traffic on the link its (rank, target) pair
    // actually crosses: intra-node P2P between ranks sharing a node,
    // the fabric otherwise. Messages and bytes are summed per target as
    // integers before one α–β evaluation per target, so the clock is
    // independent of chunk granularity (and hence of the memory
    // budget); with `gpus_per_node == 1` it degenerates to pricing the
    // whole tally on the fabric, per target.
    let mut setup_comm_s = 0.0;
    let (mut msgs_total, mut bytes_total) = (0u64, 0u64);
    for p in plans {
        let msgs = 1 + p.chunks.iter().map(|c| c.messages).sum::<u64>();
        let bytes = p.skeleton_bytes + p.chunks.iter().map(|c| c.bytes).sum::<u64>();
        setup_comm_s += cfg.link(rank, p.target).seconds_for(msgs, bytes);
        msgs_total += msgs;
        bytes_total += bytes;
    }
    debug_assert_eq!(
        (msgs_total, bytes_total),
        (tally.messages, tally.bytes),
        "per-target LET schedules must cover the rank's whole one-sided tally"
    );
    let stage_let_s = if tally.device_bytes > 0 {
        cfg.spec.transfer_seconds(tally.device_bytes as f64)
    } else {
        0.0
    };
    let setup_stage_s = sim.htod_sources_s + sim.htod_let_s + stage_let_s;
    let precompute_s = sim.precompute_s + sim.dtoh_charges_s;
    let remote_exec_s = cfg.spec.exec_seconds(remote_flops, remote_device_bytes)
        + remote_launches as f64 * (cfg.spec.host_enqueue_s + cfg.spec.launch_latency_s);
    let compute_s = sim.compute_s + sim.dtoh_potentials_s + remote_exec_s;
    RankClocks {
        setup_host_s,
        setup_comm_s,
        setup_stage_s,
        precompute_s,
        compute_s,
    }
}

/// Weight the retained LET chunk schedules by the evaluating kernel:
/// the chunk structure is identical for the potential and field paths
/// (same lists, same LET, same traffic — an invariant the tests pin);
/// only the flops per interaction and the output columns per target
/// (4 vs 7) differ.
fn chunk_fetch_plans(setup: &RankSetup, flops_per_eval: f64, out_cols: u64) -> Vec<LetFetchPlan> {
    setup
        .plans
        .iter()
        .map(|p| LetFetchPlan {
            target: p.target,
            skeleton_bytes: p.skeleton_bytes,
            traversal_launches: p.chunks.iter().map(|c| c.launches).sum(),
            chunks: p
                .chunks
                .iter()
                .map(|c| ChunkCost {
                    messages: c.messages,
                    bytes: c.bytes,
                    fetched_particles: c.fetched_particles,
                    launches: c.launches,
                    exec_flops: c.interactions as f64 * flops_per_eval,
                    eval_bytes: ((c.eval_targets * out_cols + c.eval_sources * 4) * 8) as f64,
                })
                .collect(),
        })
        .collect()
}

/// The plan stage derives every chunk cost analytically from the
/// interaction lists; the consume stage counts the same quantities while
/// evaluating. They must agree exactly — the pipelined clock feeds on
/// the plan, the serial clock on the evaluation tallies.
fn debug_assert_plans_reconcile(
    setup: &RankSetup,
    plans: &[LetFetchPlan],
    remote_ops: &OpCounts,
    device_bytes: f64,
) {
    if cfg!(debug_assertions) {
        let chunks = || plans.iter().flat_map(|p| &p.chunks);
        let launches: u64 = chunks().map(|c| c.launches).sum();
        debug_assert_eq!(launches, remote_ops.kernel_launches);
        let interactions: u64 = setup
            .plans
            .iter()
            .flat_map(|p| &p.chunks)
            .map(|c| c.interactions)
            .sum();
        debug_assert_eq!(
            interactions,
            remote_ops.approx_interactions + remote_ops.direct_interactions
        );
        let eval_bytes: f64 = chunks().map(|c| c.eval_bytes).sum();
        debug_assert_eq!(eval_bytes, device_bytes);
        let payload: u64 = chunks().map(|c| c.bytes).sum();
        debug_assert_eq!(payload, setup.tally.device_bytes);
        let messages: u64 = chunks().map(|c| c.messages).sum();
        debug_assert_eq!(
            messages + setup.plans.len() as u64,
            setup.tally.messages,
            "chunk gets + one skeleton get per LET must cover the tally"
        );
    }
}

/// Validate inputs and compute the RCB decomposition shared by both
/// entry points.
fn decompose(ps: &ParticleSet, ranks: usize, cfg: &DistConfig) -> (RcbPartition, Vec<ParticleSet>) {
    assert!(ranks >= 1, "need at least one rank");
    assert!(!ps.is_empty(), "cannot distribute an empty particle set");
    assert!(
        ranks <= ps.len(),
        "more ranks ({ranks}) than particles ({})",
        ps.len()
    );
    cfg.params.validate();
    let part = cfg.partition(ps, ranks);
    let locals = partition_particles(ps, &part);
    (part, locals)
}

/// Run the full distributed pipeline on `ranks` simulated ranks.
///
/// Ranks execute as real OS threads under `mpi_sim::run_spmd`; all
/// inter-rank data movement happens through one-sided RMA windows and is
/// recorded in the returned traffic matrix. With `ranks == 1` the result
/// is bitwise identical to `GpuEngine::with_spec(params, cfg.spec)` on
/// the whole problem.
pub fn run_distributed<K: Kernel + ?Sized>(
    ps: &ParticleSet,
    ranks: usize,
    cfg: &DistConfig,
    kernel: &K,
) -> DistReport {
    let (part, locals) = decompose(ps, ranks, cfg);
    let kref = KernelRef(kernel);
    let params = cfg.params;

    let out = run_spmd(ranks, |comm| {
        let rank = comm.rank();
        let local = &locals[rank];
        let kernel: &dyn Kernel = &kref;

        // ---- setup: local structures, windows, LETs -----------------
        // Streaming mode evaluates remote chunks into `remote_pot`
        // (batch order) during setup itself; retained mode fills it
        // from the landed LETs below. Either way it holds the same
        // per-LET, per-cluster accumulation by the time it is merged.
        let mut remote_pot = vec![0.0; local.len()];
        let mut remote_ops = OpCounts::default();
        let mut device_bytes = 0.0;
        let streaming = cfg.let_memory_budget.is_some();
        let setup = setup_rank(
            &comm,
            local,
            cfg,
            streaming.then_some(RemoteAccum::Potential {
                kernel,
                out: &mut remote_pot,
                ops: &mut remote_ops,
                device_bytes: &mut device_bytes,
            }),
        );

        // ---- local evaluation on the simulated GPU ------------------
        let gpu = GpuEngine::with_spec(params, cfg.spec)
            .with_streams(cfg.streams)
            .compute_detailed(local, local, kernel);

        // ---- remote (LET) contributions -----------------------------
        let mut potentials = gpu.result.potentials;
        for l in &setup.lets {
            eval_remote_into(
                l,
                &setup.batches,
                kernel,
                &mut remote_pot,
                &mut remote_ops,
                &mut device_bytes,
            );
        }
        if comm.size() > 1 {
            for (p, r) in potentials
                .iter_mut()
                .zip(setup.batches.scatter_to_original(&remote_pot))
            {
                *p += r;
            }
        }
        let ops = gpu.result.ops.merged(&remote_ops);

        // ---- modeled clocks -----------------------------------------
        let levels = gpu.result.tree_stats.max_level + 1;
        let clocks = model_rank_clocks(
            cfg,
            rank,
            &gpu.sim,
            local.len(),
            levels,
            &ops,
            &setup.let_stats,
            &setup.tally,
            &setup.plans,
            remote_ops.compute_flops(kernel, true),
            device_bytes,
            remote_ops.kernel_launches,
        );
        let fetch_plans = chunk_fetch_plans(&setup, kernel.flops_per_eval_gpu(), 4);
        debug_assert_plans_reconcile(&setup, &fetch_plans, &remote_ops, device_bytes);
        let pipeline = pipelined_clock(
            cfg,
            rank,
            &gpu.sim,
            local.len(),
            levels,
            gpu.result.ops.kernel_launches,
            &fetch_plans,
            clocks.total(),
        );

        if comm.tracing_enabled() {
            comm.trace_spans(pipeline.spans.iter().copied());
        }
        comm.barrier(); // epochs closed on every rank

        (
            make_rank_report(rank, local.len(), &setup, clocks, pipeline, ops),
            potentials,
        )
    });

    // ---- assemble the global report ---------------------------------
    let mut potentials = vec![0.0; ps.len()];
    let mut reports = Vec::with_capacity(ranks);
    for (rank, (report, local_pot)) in out.results.into_iter().enumerate() {
        for (i, &orig) in part.part_indices[rank].iter().enumerate() {
            potentials[orig] = local_pot[i];
        }
        reports.push(report);
    }
    let fmax = |f: &dyn Fn(&RankReport) -> f64| reports.iter().map(f).fold(0.0, f64::max);
    DistReport {
        setup_s: fmax(&|r| r.setup_total()),
        precompute_s: fmax(&|r| r.precompute_s),
        compute_s: fmax(&|r| r.compute_s),
        total_s: fmax(&|r| r.total()),
        pipelined_s: fmax(&|r| r.pipelined_s()),
        potentials,
        ranks: reports,
        traffic: out.traffic,
    }
}

/// Assemble a [`RankReport`] from the pieces every pipeline produces.
fn make_rank_report(
    rank: usize,
    n_local: usize,
    setup: &RankSetup,
    clocks: RankClocks,
    pipeline: PipelineReport,
    ops: OpCounts,
) -> RankReport {
    RankReport {
        rank,
        n_local,
        tree_nodes: setup.tree.num_nodes(),
        num_batches: setup.batches.len(),
        let_stats: setup.let_stats,
        let_messages: setup.tally.messages,
        let_bytes: setup.tally.bytes,
        peak_let_bytes: setup.peak_let_bytes,
        setup_host_s: clocks.setup_host_s,
        setup_comm_s: clocks.setup_comm_s,
        setup_stage_s: clocks.setup_stage_s,
        precompute_s: clocks.precompute_s,
        compute_s: clocks.compute_s,
        pipeline,
        ops,
    }
}

/// Run the full distributed **field** pipeline on `ranks` simulated
/// ranks: same decomposition, windows, and LET construction as
/// [`run_distributed`], but every evaluation — the local simulated-GPU
/// pass and the remote LET contributions — produces potentials *and*
/// 3-component gradients through [`GradientKernel`].
///
/// The LET is reused unchanged (modified charges differentiate for free
/// with respect to the target), so the field run records exactly the
/// same one-sided traffic as a potential run; only the device clock
/// (~4× compute flops, 4× DtH volume) differs. With `ranks == 1` the
/// result is bitwise identical to
/// [`GpuEngine::compute_field_detailed`] on the whole problem.
pub fn run_distributed_field<K: GradientKernel + ?Sized>(
    ps: &ParticleSet,
    ranks: usize,
    cfg: &DistConfig,
    kernel: &K,
) -> DistFieldReport {
    let (part, locals) = decompose(ps, ranks, cfg);
    run_field_pipeline(ps, &part, &locals, cfg, kernel)
}

/// Step-level re-entry into the field pipeline: run it with a
/// **caller-supplied** RCB partition instead of recomputing one.
///
/// Time-stepping drivers (`bltc-sim`) call the force evaluation once
/// per step while particle *positions* drift slowly relative to the
/// decomposition; re-partitioning every step would charge the RCB host
/// cost N times for no accuracy gain. This entry point lets the driver
/// hold the partition fixed between repartition-cadence boundaries:
/// rank ownership is frozen (so per-rank particle counts cannot
/// change), while trees, charges, windows, and LETs are rebuilt from
/// the *current* positions on every call — they must be, since every
/// particle has moved.
///
/// A stale partition is still *correct* — the per-rank source trees are
/// built from the particles' live bounding boxes, not from the original
/// RCB regions — it is merely less compact, which surfaces honestly as
/// more LET traffic in the returned [`DistFieldReport::traffic`]. That
/// is exactly the trade a repartition cadence buys.
///
/// # Panics
///
/// Panics if the partition does not cover `ps` (assignment length
/// mismatch), if any part is empty, or on invalid `cfg.params`.
pub fn run_distributed_field_on<K: GradientKernel + ?Sized>(
    ps: &ParticleSet,
    part: &RcbPartition,
    cfg: &DistConfig,
    kernel: &K,
) -> DistFieldReport {
    assert_eq!(
        part.assignment.len(),
        ps.len(),
        "partition does not cover the particle set"
    );
    assert!(
        part.part_indices.iter().all(|p| !p.is_empty()),
        "every rank needs at least one particle"
    );
    cfg.params.validate();
    let locals = partition_particles(ps, part);
    run_field_pipeline(ps, part, &locals, cfg, kernel)
}

/// The rank-level body of a distributed **field** evaluation: local
/// tree/window/LET setup, simulated-GPU evaluation, remote LET
/// contributions, and the modeled phase clocks — everything one rank
/// does between entering and leaving the bulk-synchronous region.
///
/// This is the piece [`run_distributed_field_on`] executes under
/// `run_spmd`, factored out so the *same* body can run as an epoch
/// against live ranks in a persistent session
/// ([`persistent::FieldSession`], or any
/// [`mpi_sim::Session::run_epoch`] closure). Must be called from every
/// rank of the SPMD context with the same `cfg` — it contains
/// collectives (window creation and the closing barrier).
///
/// Returns the rank's report and its field values in **local particle
/// order** (the order of `local`).
pub fn eval_field_rank(
    comm: &Comm,
    local: &ParticleSet,
    cfg: &DistConfig,
    kernel: &dyn GradientKernel,
) -> (RankReport, FieldResult) {
    let params = cfg.params;

    // ---- setup: local structures, windows, LETs ---------------------
    // Batch-order accumulators for the four remote outputs. Streaming
    // mode fills them chunk by chunk during setup; retained mode fills
    // them from the landed LETs below — identical accumulation either
    // way.
    let n = local.len();
    let (mut rp, mut rx, mut ry, mut rz) = (vec![0.0; n], vec![0.0; n], vec![0.0; n], vec![0.0; n]);
    let mut remote_ops = OpCounts::default();
    let mut device_bytes = 0.0;
    let streaming = cfg.let_memory_budget.is_some();
    let setup = setup_rank(
        comm,
        local,
        cfg,
        streaming.then_some(RemoteAccum::Field {
            kernel,
            pot: &mut rp,
            gx: &mut rx,
            gy: &mut ry,
            gz: &mut rz,
            ops: &mut remote_ops,
            device_bytes: &mut device_bytes,
        }),
    );

    // ---- local evaluation on the simulated GPU ----------------------
    let gpu = GpuEngine::with_spec(params, cfg.spec)
        .with_streams(cfg.streams)
        .compute_field_detailed(local, local, kernel);

    // ---- remote (LET) contributions ---------------------------------
    let mut field = gpu.field;
    for l in &setup.lets {
        eval_remote_field_into(
            l,
            &setup.batches,
            kernel,
            &mut rp,
            &mut rx,
            &mut ry,
            &mut rz,
            &mut remote_ops,
            &mut device_bytes,
        );
    }
    if comm.size() > 1 {
        let add = |dst: &mut [f64], src: Vec<f64>| {
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        };
        add(
            &mut field.potentials,
            setup.batches.scatter_to_original(&rp),
        );
        add(&mut field.gx, setup.batches.scatter_to_original(&rx));
        add(&mut field.gy, setup.batches.scatter_to_original(&ry));
        add(&mut field.gz, setup.batches.scatter_to_original(&rz));
    }
    let ops = gpu.ops.merged(&remote_ops);

    // ---- modeled clocks (gradient flops on the remote pass) ---------
    let levels = gpu.tree_stats.max_level + 1;
    let clocks = model_rank_clocks(
        cfg,
        comm.rank(),
        &gpu.sim,
        local.len(),
        levels,
        &ops,
        &setup.let_stats,
        &setup.tally,
        &setup.plans,
        remote_ops.field_flops(kernel, true),
        device_bytes,
        remote_ops.kernel_launches,
    );
    let fetch_plans = chunk_fetch_plans(&setup, kernel.grad_flops_per_eval_gpu(), 7);
    debug_assert_plans_reconcile(&setup, &fetch_plans, &remote_ops, device_bytes);
    let pipeline = pipelined_clock(
        cfg,
        comm.rank(),
        &gpu.sim,
        local.len(),
        levels,
        gpu.ops.kernel_launches,
        &fetch_plans,
        clocks.total(),
    );

    // Deposit this epoch's phase-DAG spans for the driver to drain
    // (observational only; also carried in the report's pipeline).
    if comm.tracing_enabled() {
        comm.trace_spans(pipeline.spans.iter().copied());
    }

    // Epochs closed on every rank; windows (held by `setup`) must stay
    // alive until every peer is done fetching.
    comm.barrier();

    (
        make_rank_report(comm.rank(), local.len(), &setup, clocks, pipeline, ops),
        field,
    )
}

/// Shared body of [`run_distributed_field`] /
/// [`run_distributed_field_on`]: the SPMD run plus global assembly.
fn run_field_pipeline<K: GradientKernel + ?Sized>(
    ps: &ParticleSet,
    part: &RcbPartition,
    locals: &[ParticleSet],
    cfg: &DistConfig,
    kernel: &K,
) -> DistFieldReport {
    let ranks = part.num_parts();
    let kref = KernelRef(kernel);

    let out = run_spmd(ranks, |comm| {
        let local = &locals[comm.rank()];
        eval_field_rank(&comm, local, cfg, &kref)
    });

    // ---- assemble the global report ---------------------------------
    let n = ps.len();
    let mut field = FieldResult {
        potentials: vec![0.0; n],
        gx: vec![0.0; n],
        gy: vec![0.0; n],
        gz: vec![0.0; n],
    };
    let mut reports = Vec::with_capacity(ranks);
    for (rank, (report, local_field)) in out.results.into_iter().enumerate() {
        for (i, &orig) in part.part_indices[rank].iter().enumerate() {
            field.potentials[orig] = local_field.potentials[i];
            field.gx[orig] = local_field.gx[i];
            field.gy[orig] = local_field.gy[i];
            field.gz[orig] = local_field.gz[i];
        }
        reports.push(report);
    }
    let fmax = |f: &dyn Fn(&RankReport) -> f64| reports.iter().map(f).fold(0.0, f64::max);
    DistFieldReport {
        setup_s: fmax(&|r| r.setup_total()),
        precompute_s: fmax(&|r| r.precompute_s),
        compute_s: fmax(&|r| r.compute_s),
        total_s: fmax(&|r| r.total()),
        pipelined_s: fmax(&|r| r.pipelined_s()),
        field,
        ranks: reports,
        traffic: out.traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bltc_core::engine::direct_sum;
    use bltc_core::error::relative_l2_error;
    use bltc_core::kernel::Coulomb;

    fn cfg() -> DistConfig {
        DistConfig::comet(BltcParams::new(0.8, 3, 60, 60))
    }

    #[test]
    fn comet_preset_matches_paper_platform() {
        let c = cfg();
        assert_eq!(c.spec.name, DeviceSpec::p100().name);
        assert_eq!(c.net.name, NetworkSpec::infiniband_fdr().name);
        assert!(c.streams >= 1);
    }

    #[test]
    fn single_rank_has_no_remote_traffic() {
        let ps = ParticleSet::random_cube(500, 1);
        let rep = run_distributed(&ps, 1, &cfg(), &Coulomb);
        assert_eq!(rep.traffic.total_remote_bytes(), 0);
        assert_eq!(rep.ranks[0].let_stats.fetched_particles, 0);
        assert_eq!(rep.ranks[0].setup_comm_s, 0.0);
    }

    #[test]
    fn two_ranks_match_direct_sum() {
        let ps = ParticleSet::random_cube(1200, 2);
        let rep = run_distributed(&ps, 2, &cfg(), &Coulomb);
        let exact = direct_sum(&ps, &ps, &Coulomb);
        let err = relative_l2_error(&exact, &rep.potentials);
        assert!(err < 1e-3, "two-rank error {err}");
        assert!(rep.traffic.total_remote_bytes() > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let ps = ParticleSet::random_cube(800, 3);
        let a = run_distributed(&ps, 3, &cfg(), &Coulomb);
        let b = run_distributed(&ps, 3, &cfg(), &Coulomb);
        assert_eq!(a.potentials, b.potentials);
        assert_eq!(a.total_s, b.total_s);
        assert_eq!(
            a.traffic.total_remote_bytes(),
            b.traffic.total_remote_bytes()
        );
    }

    #[test]
    fn per_rank_phases_sum_to_total() {
        let ps = ParticleSet::random_cube(900, 4);
        let rep = run_distributed(&ps, 3, &cfg(), &Coulomb);
        for r in &rep.ranks {
            // The serial phase sum is exact — pipelining added a second
            // clock, it did not perturb this one.
            assert_eq!(r.setup_total() + r.precompute_s + r.compute_s, r.total());
            // The pipelined critical path reschedules the same work and
            // can only win: never exceed the serial sum, never beat the
            // device-side lower bound of the local block.
            assert!(r.pipelined_s() <= r.total());
            assert!(r.pipelined_s() > 0.0);
            // One NIC serializes the chunk gets: land times and ready
            // times are nondecreasing in dispatch order.
            for w in r.pipeline.chunks.windows(2) {
                assert!(w[0].land_s <= w[1].land_s);
                assert!(w[0].ready_s <= w[1].ready_s);
            }
            for c in &r.pipeline.chunks {
                assert!(c.ready_s >= c.land_s);
            }
        }
        assert!(rep.pipelined_s <= rep.total_s);
        assert!(rep.total_ops().num_batches > 0);
    }

    #[test]
    fn single_rank_pipeline_equals_serial() {
        // Nothing remote to overlap: the DAG degenerates to the serial
        // chain (clamped against float reassociation across the two
        // summation orders).
        let ps = ParticleSet::random_cube(700, 41);
        let rep = run_distributed(&ps, 1, &cfg(), &Coulomb);
        let r = &rep.ranks[0];
        assert!(r.pipelined_s() <= r.total());
        assert!((r.pipelined_s() - r.total()).abs() < 1e-12 * r.total());
        assert!(r.pipeline.chunks.is_empty());
        assert_eq!(r.pipeline.last_land_s, 0.0);
    }

    #[test]
    fn chunk_granularity_changes_clock_only() {
        // let_chunk is a modeling knob: any granularity fetches the same
        // bytes in the same order and yields bitwise-identical results
        // and serial clocks; only the pipelined critical path moves.
        let ps = ParticleSet::random_cube(1000, 42);
        let base = cfg();
        let fine = DistConfig {
            let_chunk: 4,
            ..base
        };
        let a = run_distributed(&ps, 3, &base, &Coulomb);
        let b = run_distributed(&ps, 3, &fine, &Coulomb);
        assert_eq!(a.potentials, b.potentials);
        assert_eq!(a.total_s, b.total_s);
        for (ra, rb) in a.ranks.iter().zip(&b.ranks) {
            assert_eq!(ra.let_messages, rb.let_messages);
            assert_eq!(ra.let_bytes, rb.let_bytes);
            assert_eq!(ra.total(), rb.total());
            assert!(rb.pipeline.chunks.len() >= ra.pipeline.chunks.len());
            assert!(rb.pipelined_s() <= rb.total());
        }
    }

    #[test]
    #[should_panic(expected = "more ranks")]
    fn too_many_ranks_rejected() {
        let ps = ParticleSet::random_cube(3, 5);
        let _ = run_distributed(&ps, 8, &cfg(), &Coulomb);
    }

    #[test]
    fn single_rank_field_matches_gpu_engine_bitwise() {
        let ps = ParticleSet::random_cube(900, 6);
        let c = cfg();
        let dist = run_distributed_field(&ps, 1, &c, &Coulomb);
        let gpu = GpuEngine::with_spec(c.params, c.spec).compute_field_detailed(&ps, &ps, &Coulomb);
        assert_eq!(dist.field.potentials, gpu.field.potentials);
        assert_eq!(dist.field.gx, gpu.field.gx);
        assert_eq!(dist.field.gy, gpu.field.gy);
        assert_eq!(dist.field.gz, gpu.field.gz);
        assert_eq!(dist.traffic.total_remote_bytes(), 0);
    }

    #[test]
    fn field_potentials_match_potential_only_run_bitwise() {
        // Same lists, same LET, same scalar potential expressions — the
        // field path's potential output is the potential path's output.
        let ps = ParticleSet::random_cube(1100, 7);
        let pot = run_distributed(&ps, 3, &cfg(), &Coulomb);
        let fld = run_distributed_field(&ps, 3, &cfg(), &Coulomb);
        assert_eq!(pot.potentials, fld.field.potentials);
    }

    #[test]
    fn field_run_matches_direct_sum_field() {
        use bltc_core::field::direct_sum_field;
        let ps = ParticleSet::random_cube(1200, 8);
        let c = DistConfig::comet(BltcParams::new(0.7, 6, 60, 60));
        let rep = run_distributed_field(&ps, 2, &c, &Coulomb);
        let exact = direct_sum_field(&ps, &ps, &Coulomb);
        assert!(relative_l2_error(&exact.potentials, &rep.field.potentials) < 1e-4);
        assert!(relative_l2_error(&exact.gx, &rep.field.gx) < 1e-3, "gx");
        assert!(relative_l2_error(&exact.gy, &rep.field.gy) < 1e-3, "gy");
        assert!(relative_l2_error(&exact.gz, &rep.field.gz) < 1e-3, "gz");
    }

    #[test]
    fn streaming_is_bitwise_invisible_and_bounds_peak_memory() {
        let ps = ParticleSet::random_cube(1000, 10);
        let base = cfg();
        let retained = run_distributed(&ps, 3, &base, &Coulomb);
        // Tight but feasible: well under the retained peaks, above any
        // single cluster payload (proxy m³·8 and leaf-cap particles).
        let budget = 16 * 1024;
        let streamed = run_distributed(
            &ps,
            3,
            &DistConfig {
                let_memory_budget: Some(budget),
                ..base
            },
            &Coulomb,
        );
        assert_eq!(retained.potentials, streamed.potentials);
        assert_eq!(retained.total_s, streamed.total_s);
        assert_eq!(retained.traffic, streamed.traffic);
        for (r, s) in retained.ranks.iter().zip(&streamed.ranks) {
            assert_eq!(r.ops, s.ops);
            assert_eq!(r.let_stats.fetched_particles, s.let_stats.fetched_particles);
            assert_eq!(r.total(), s.total());
            // Retained mode holds the whole payload; streaming holds at
            // most one chunk, within the budget.
            assert_eq!(r.peak_let_bytes, r.let_bytes - skeleton_bytes_of(r));
            assert!(
                s.peak_let_bytes <= budget,
                "rank {}: peak {} > budget {budget}",
                s.rank,
                s.peak_let_bytes
            );
            assert!(s.peak_let_bytes > 0);
            assert!(s.peak_let_bytes < r.peak_let_bytes);
        }
    }

    /// Payload (device-staged) bytes of a rank = total one-sided bytes
    /// minus the skeleton gets, reconstructed from the LET stats.
    fn skeleton_bytes_of(r: &RankReport) -> u64 {
        r.let_stats.remote_skeleton_nodes * std::mem::size_of::<letree::NodeMeta>() as u64
    }

    #[test]
    fn two_level_hierarchy_prices_intranode_traffic_cheaper() {
        let ps = ParticleSet::random_cube(1200, 11);
        let hier = DistConfig {
            gpus_per_node: 2,
            ..cfg()
        };
        // Same two-level partition, but intra-node pairs priced on the
        // fabric — isolates the pricing term from the decomposition.
        let flat_priced = DistConfig {
            intranode_net: hier.net,
            ..hier
        };
        let a = run_distributed(&ps, 4, &hier, &Coulomb);
        let b = run_distributed(&ps, 4, &flat_priced, &Coulomb);
        // Pricing never touches data: identical potentials and traffic.
        assert_eq!(a.potentials, b.potentials);
        assert_eq!(a.traffic, b.traffic);
        for (ra, rb) in a.ranks.iter().zip(&b.ranks) {
            // Every rank has one same-node peer with nonzero traffic, so
            // the cheap intra-node link must strictly lower its comm
            // clock.
            assert!(
                ra.setup_comm_s < rb.setup_comm_s,
                "rank {}: {} !< {}",
                ra.rank,
                ra.setup_comm_s,
                rb.setup_comm_s
            );
            assert!(ra.pipelined_s() <= ra.total());
        }
        // And the hierarchy still computes the right answer.
        let exact = direct_sum(&ps, &ps, &Coulomb);
        assert!(relative_l2_error(&exact, &a.potentials) < 1e-3);
    }

    #[test]
    fn hierarchy_rejects_partial_nodes() {
        let ps = ParticleSet::random_cube(200, 12);
        let hier = DistConfig {
            gpus_per_node: 2,
            ..cfg()
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hier.partition(&ps, 3)));
        assert!(err.is_err(), "3 ranks is not a whole number of 2-GPU nodes");
    }

    #[test]
    fn gradient_kernels_inflate_the_compute_clock() {
        let ps = ParticleSet::random_cube(1500, 9);
        let pot = run_distributed(&ps, 2, &cfg(), &Coulomb);
        let fld = run_distributed_field(&ps, 2, &cfg(), &Coulomb);
        for (p, f) in pot.ranks.iter().zip(&fld.ranks) {
            assert!(
                f.compute_s > p.compute_s,
                "rank {}: field compute {} !> potential compute {}",
                p.rank,
                f.compute_s,
                p.compute_s
            );
            // Same interactions, same LET, same traffic.
            assert_eq!(p.ops, f.ops);
            assert_eq!(p.let_bytes, f.let_bytes);
            assert_eq!(p.let_messages, f.let_messages);
            assert_eq!(p.setup_comm_s, f.setup_comm_s);
        }
        assert!(fld.compute_s > pot.compute_s);
    }
}
