//! Kernel independence: plug a user-defined interaction kernel into the
//! treecode with no kernel-specific code — only point evaluations.
//!
//! We define a Stokeslet-like `1/r + r/(2a²)`-regularized kernel and a
//! London/van-der-Waals-style `-1/(r⁶ + c)` kernel, then verify both
//! converge to the direct sum as the interpolation degree rises — the
//! property that distinguishes the BLTC from expansion-based treecodes.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use bltc::core::kernel::Kernel;
use bltc::core::prelude::*;

/// A blob-regularized Stokeslet-style kernel (smooth at the origin).
struct RegularizedStokeslet {
    blob: f64,
}

impl Kernel for RegularizedStokeslet {
    fn eval(&self, dx: f64, dy: f64, dz: f64) -> f64 {
        let r2 = dx * dx + dy * dy + dz * dz;
        let d2 = r2 + self.blob * self.blob;
        (r2 + 2.0 * self.blob * self.blob) / (d2 * d2.sqrt())
    }
    fn name(&self) -> &'static str {
        "regularized-stokeslet"
    }
    fn flops_per_eval_cpu(&self) -> f64 {
        20.0
    }
    fn flops_per_eval_gpu(&self) -> f64 {
        11.0
    }
}

/// A London-dispersion-style attractive kernel, softened at the origin.
struct LondonDispersion {
    soft: f64,
}

impl Kernel for LondonDispersion {
    fn eval(&self, dx: f64, dy: f64, dz: f64) -> f64 {
        let r2 = dx * dx + dy * dy + dz * dz;
        -1.0 / (r2 * r2 * r2 + self.soft)
    }
    fn name(&self) -> &'static str {
        "london-dispersion"
    }
    fn flops_per_eval_cpu(&self) -> f64 {
        12.0
    }
    fn flops_per_eval_gpu(&self) -> f64 {
        8.0
    }
}

fn main() {
    let ps = ParticleSet::random_cube(6_000, 55);
    let kernels: Vec<Box<dyn Kernel>> = vec![
        Box::new(RegularizedStokeslet { blob: 0.05 }),
        Box::new(LondonDispersion { soft: 1e-4 }),
    ];

    for kernel in &kernels {
        println!("== {} ==", kernel.name());
        let exact = direct_sum(&ps, &ps, kernel.as_ref());
        println!("degree   error");
        let mut prev = f64::INFINITY;
        for degree in [2usize, 4, 6, 8] {
            let params = BltcParams::new(0.6, degree, 250, 250);
            let result = SerialEngine::new(params).compute(&ps, &ps, kernel.as_ref());
            let err = relative_l2_error(&exact, &result.potentials);
            println!("{degree:>6}   {err:.3e}");
            assert!(
                err < prev,
                "{}: error must fall with degree ({err} !< {prev})",
                kernel.name()
            );
            prev = err;
        }
        assert!(prev < 1e-4, "{}: degree-8 error too large", kernel.name());
        println!("converged — no kernel-specific machinery required\n");
    }
    println!("OK — the treecode is kernel-independent (only Kernel::eval was provided)");
}
