//! The distributed pipeline end-to-end on 4 simulated ranks: RCB domain
//! decomposition, per-rank GPU precompute, locally essential tree
//! construction over one-sided RMA, and distributed evaluation — with
//! the LET statistics and the recorded communication matrix printed.
//!
//! ```text
//! cargo run --release --example distributed_let
//! ```

use bltc::core::prelude::*;
use bltc::dist::{run_distributed, DistConfig};

fn main() {
    let n = 16_000;
    let ranks = 4;
    let ps = ParticleSet::random_cube(n, 33);
    let params = BltcParams::new(0.8, 4, 500, 500);
    let cfg = DistConfig::comet(params);

    println!(
        "distributed BLTC: N = {n}, {ranks} ranks ({} per rank)",
        n / ranks
    );
    println!("device/rank: {}, fabric: {}\n", cfg.spec.name, cfg.net.name);

    let rep = run_distributed(&ps, ranks, &cfg, &Coulomb);

    // Accuracy vs direct summation.
    let exact = direct_sum(&ps, &ps, &Coulomb);
    let err = relative_l2_error(&exact, &rep.potentials);
    println!("relative 2-norm error vs direct sum: {err:.2e}\n");

    println!("per-rank summary:");
    println!("rank  n_local  tree_nodes  batches  LET:approx  LET:direct  fetched_particles");
    for r in &rep.ranks {
        println!(
            "{:>4}  {:>7}  {:>10}  {:>7}  {:>10}  {:>10}  {:>17}",
            r.rank,
            r.n_local,
            r.tree_nodes,
            r.num_batches,
            r.let_stats.remote_approx_nodes,
            r.let_stats.remote_direct_nodes,
            r.let_stats.fetched_particles,
        );
    }

    println!("\none-sided traffic matrix (KiB, origin row → target column):");
    print!("      ");
    for t in 0..ranks {
        print!("{t:>9}");
    }
    println!();
    for o in 0..ranks {
        print!("{o:>4}  ");
        for t in 0..ranks {
            print!("{:>9.1}", rep.traffic.get(o, t).bytes as f64 / 1024.0);
        }
        println!();
    }

    println!("\nmodeled phases (max over ranks):");
    println!("  setup      : {:>9.3} ms", rep.setup_s * 1e3);
    println!("  precompute : {:>9.3} ms", rep.precompute_s * 1e3);
    println!("  compute    : {:>9.3} ms", rep.compute_s * 1e3);
    println!("  total      : {:>9.3} ms", rep.total_s * 1e3);

    assert!(err < 1e-3);
    println!("\nOK — distributed result matches direct summation to MAC accuracy");
}
