//! Distributed **force** evaluation end-to-end on 4 simulated ranks:
//! the same RCB + LET pipeline as `distributed_let`, but every rank
//! evaluates potentials *and* 3-component gradients through the
//! gradient-capable GPU kernels (`run_distributed_field`), so forces
//! `F_i = -q_i ∇φ(x_i)` — the astrophysics / MD quantity — come out of
//! the distributed path directly.
//!
//! ```text
//! cargo run --release --example distributed_forces
//! ```

use bltc::core::prelude::*;
use bltc::dist::{run_distributed, run_distributed_field, DistConfig};

fn main() {
    let n = 12_000;
    let ranks = 4;
    let ps = ParticleSet::random_cube(n, 34);
    let params = BltcParams::new(0.7, 6, 400, 400);
    let cfg = DistConfig::comet(params);

    println!(
        "distributed BLTC forces: N = {n}, {ranks} ranks ({} per rank)",
        n / ranks
    );
    println!("device/rank: {}, fabric: {}\n", cfg.spec.name, cfg.net.name);

    let rep = run_distributed_field(&ps, ranks, &cfg, &Coulomb);

    // Accuracy vs direct-sum forces (the O(N²) reference).
    let exact = direct_sum_field(&ps, &ps, &Coulomb);
    let err_pot = relative_l2_error(&exact.potentials, &rep.field.potentials);
    let err_gx = relative_l2_error(&exact.gx, &rep.field.gx);
    let err_gy = relative_l2_error(&exact.gy, &rep.field.gy);
    let err_gz = relative_l2_error(&exact.gz, &rep.field.gz);
    println!("relative 2-norm error vs direct summation:");
    println!("  potential : {err_pot:.2e}");
    println!("  ∂φ/∂x     : {err_gx:.2e}");
    println!("  ∂φ/∂y     : {err_gy:.2e}");
    println!("  ∂φ/∂z     : {err_gz:.2e}\n");

    println!("per-rank summary:");
    println!("rank  n_local  batches  LET:approx  LET:direct  RMA msgs  RMA KiB");
    for r in &rep.ranks {
        println!(
            "{:>4}  {:>7}  {:>7}  {:>10}  {:>10}  {:>8}  {:>7.1}",
            r.rank,
            r.n_local,
            r.num_batches,
            r.let_stats.remote_approx_nodes,
            r.let_stats.remote_direct_nodes,
            r.let_messages,
            r.let_bytes as f64 / 1024.0,
        );
    }

    // Gradient kernels charge ~4× the flops: visible as a fatter
    // compute phase than the potential-only run of the same problem.
    let pot_rep = run_distributed(&ps, ranks, &cfg, &Coulomb);
    println!("\nmodeled phases, field vs potential-only (max over ranks):");
    println!("                field        potential-only");
    println!(
        "  setup      : {:>9.3} ms   {:>9.3} ms",
        rep.setup_s * 1e3,
        pot_rep.setup_s * 1e3
    );
    println!(
        "  precompute : {:>9.3} ms   {:>9.3} ms",
        rep.precompute_s * 1e3,
        pot_rep.precompute_s * 1e3
    );
    println!(
        "  compute    : {:>9.3} ms   {:>9.3} ms",
        rep.compute_s * 1e3,
        pot_rep.compute_s * 1e3
    );
    println!(
        "  total      : {:>9.3} ms   {:>9.3} ms",
        rep.total_s * 1e3,
        pot_rep.total_s * 1e3
    );

    // A sample force, to make the physics concrete.
    let i = 0;
    let (fx, fy, fz) = (
        -ps.q[i] * rep.field.gx[i],
        -ps.q[i] * rep.field.gy[i],
        -ps.q[i] * rep.field.gz[i],
    );
    println!(
        "\nforce on particle 0 (q = {:+.3}): ({fx:+.4}, {fy:+.4}, {fz:+.4})",
        ps.q[i]
    );

    assert!(err_gx <= 1e-3 && err_gy <= 1e-3 && err_gz <= 1e-3);
    assert!(rep.compute_s > pot_rep.compute_s);
    assert_eq!(
        rep.traffic.total_remote_bytes(),
        pot_rep.traffic.total_remote_bytes(),
        "gradient evaluation must add no RMA traffic"
    );
    println!("\nOK — distributed forces match direct summation to ≤1e-3");
}
