//! Distributed **dynamics** end-to-end: a gravitating Plummer sphere
//! integrated with velocity-Verlet for 100 steps on 4 simulated ranks,
//! forces from the distributed field pipeline each step, RCB
//! repartitioning on a cadence — followed by a short screened-electrolyte
//! (Yukawa) box run to show the MD face of the same driver.
//!
//! Checks performed (and asserted):
//! - relative total-energy drift over the run stays ≤ 1e-3,
//! - every step's per-rank RMA tallies reconcile **exactly** against
//!   the runtime's `TrafficMatrix`, and the cumulative matrix equals
//!   the sum of the per-step tallies.
//!
//! ```text
//! cargo run --release --example distributed_dynamics
//! ```

use bltc::core::prelude::*;
use bltc::dist::DistConfig;
use bltc::sim::{electrolyte_box, plummer_sphere, Integrator, SimConfig};

fn main() {
    // ---- scenario 1: gravitating Plummer sphere ---------------------
    let (n, ranks, steps) = (4_000, 4, 100);
    let (mut state, model) = plummer_sphere(n, 1.0, 0.05, 42);
    let dist = DistConfig::comet(BltcParams::new(0.7, 6, 200, 200));
    let cfg = SimConfig::new(dist, ranks, 1e-3).with_repartition_every(10);

    println!(
        "distributed dynamics: {} — N = {n}, {ranks} ranks",
        model.name
    );
    println!(
        "velocity-Verlet, dt = {}, {steps} steps, repartition every {}\n",
        cfg.dt, cfg.repartition_every
    );

    let mut integrator = Integrator::new(cfg, &state, &model);
    let e0 = integrator.report().initial_energy;
    println!(
        "initial energy E0 = {e0:.6} (KE = {:.6})",
        state.kinetic_energy()
    );
    println!("\n step   time      E          |ΔE|/|E0|   RMA KiB  repart");

    for rep in integrator.run(&mut state, &model, steps) {
        // Acceptance: per-step traffic reconciles exactly against the
        // runtime's TrafficMatrix.
        assert_eq!(rep.rank_msgs, rep.matrix_msgs, "step {} messages", rep.step);
        assert_eq!(rep.rank_bytes, rep.matrix_bytes, "step {} bytes", rep.step);
        if rep.step % 10 == 0 {
            println!(
                "{:>5}  {:>5.3}  {:>9.6}  {:>9.2e}  {:>8.1}  {}",
                rep.step,
                rep.time,
                rep.total_energy(),
                (rep.total_energy() - e0).abs() / e0.abs(),
                rep.rank_bytes as f64 / 1024.0,
                if rep.repartitioned { "yes" } else { "" },
            );
        }
    }

    let report = integrator.report();
    let drift = report.max_relative_energy_drift();
    println!("\nafter {} steps:", report.steps);
    println!("  max |E - E0| / |E0|   : {drift:.2e}");
    println!("  repartitions          : {}", report.repartitions);
    println!(
        "  modeled phase seconds : setup {:.4}, precompute {:.4}, compute {:.4}",
        report.setup_s, report.precompute_s, report.compute_s
    );
    println!(
        "  modeled s/step        : {:.6} ({} force evals)",
        report.seconds_per_step(),
        report.force_evals
    );
    println!(
        "  cumulative RMA        : {} msgs, {:.1} KiB",
        report.rma_messages,
        report.rma_bytes as f64 / 1024.0
    );

    // Cumulative matrix reconciles against summed per-step tallies.
    assert_eq!(report.traffic.total_remote_messages(), report.rma_messages);
    assert_eq!(report.traffic.total_remote_bytes(), report.rma_bytes);
    assert!(drift <= 1e-3, "energy drift {drift} exceeds 1e-3");

    // ---- scenario 2: screened-electrolyte (Yukawa) box --------------
    let (mut ion_state, ion_model) = electrolyte_box(2_000, 2.0, 0.1, 0.05, 7);
    let ion_cfg = SimConfig::new(
        DistConfig::comet(BltcParams::new(0.7, 6, 200, 200)),
        ranks,
        5e-4,
    )
    .with_repartition_every(5);
    let mut ion_integrator = Integrator::new(ion_cfg, &ion_state, &ion_model);
    let ion_e0 = ion_integrator.report().initial_energy;
    ion_integrator.run(&mut ion_state, &ion_model, 40);
    let ion_report = ion_integrator.report();
    println!(
        "\n{} — N = 2000, κ = 2: 40 steps, E0 = {:.4}, E = {:.4}, drift {:.2e}",
        ion_model.name,
        ion_e0,
        ion_report.final_energy,
        ion_report.max_relative_energy_drift()
    );
    assert!(ion_report.max_relative_energy_drift() <= 1e-2);

    println!("\nOK — 4-rank Plummer integrated ≥100 steps with energy drift ≤ 1e-3");
}
