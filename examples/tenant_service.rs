//! The many-tenant simulation service end-to-end: four tenants submit
//! a mix of Plummer, electrolyte, and custom-kernel jobs to a shared
//! [`bltc::service::SimService`], which schedules them onto a bounded
//! pool of warm SPMD worlds with a prepared-scenario cache.
//!
//! Checks performed (and asserted — the ISSUE-8 service contract):
//! - every tenant's final state is **bitwise identical** to running the
//!   same `JobSpec` solo on a dedicated fresh world (tenancy, pool
//!   reuse, and cache hits are invisible in the bits),
//! - identical specs hit the preparation cache and recycle warm worlds
//!   (`world_spawns == 0` on the reused runs),
//! - one tenant's injected mid-run panic is contained: the faulty job
//!   fails with a descriptive error, every other tenant's bits are
//!   untouched, and the poisoned world is never recycled,
//! - per-tenant metering reconciles exactly with the jobs' drained
//!   traffic matrices,
//! - invalid specs are rejected at admission with a reason.
//!
//! ```text
//! cargo run --release --example tenant_service
//! ```

use bltc::core::prelude::*;
use bltc::dist::DistConfig;
use bltc::service::{
    state_digest, Fault, JobSpec, KernelSpec, Scenario, ServiceConfig, SimService,
};
use bltc::sim::PersistentIntegrator;

fn base_spec(scenario: Scenario, n: usize, seed: u64) -> JobSpec {
    JobSpec {
        scenario,
        n,
        seed,
        ranks: 3,
        steps: 3,
        dt: 1e-3,
        repartition_every: 2,
        dist: DistConfig::comet(BltcParams::new(0.7, 4, 80, 80)),
        fault: Fault::None,
        checkpoint_every: None,
        deadline_s: None,
        allow_degraded: false,
    }
}

/// The reference bits: the same spec run solo on a dedicated world.
fn solo_digest(spec: &JobSpec) -> u64 {
    let (state, model) = spec.scenario.build(spec.n, spec.seed);
    let mut integ = PersistentIntegrator::new(spec.sim_config(), &state, &model);
    for _ in 0..spec.steps {
        integ.step();
    }
    state_digest(&integ.snapshot())
}

fn main() {
    let specs = [
        base_spec(
            Scenario::Plummer {
                a: 1.0,
                softening: 0.05,
            },
            600,
            11,
        ),
        base_spec(
            Scenario::Electrolyte {
                kappa: 0.5,
                softening: 0.05,
                thermal_speed: 0.1,
            },
            500,
            12,
        ),
        base_spec(
            Scenario::Custom {
                kernel: KernelSpec::Yukawa { kappa: 0.8 },
            },
            400,
            13,
        ),
        // Tenant 3 resubmits tenant 0's exact spec: a cache hit.
        base_spec(
            Scenario::Plummer {
                a: 1.0,
                softening: 0.05,
            },
            600,
            11,
        ),
    ];

    println!(
        "tenant_service — {} tenants on a 2-worker warm pool\n",
        specs.len()
    );
    let solos: Vec<u64> = specs.iter().map(solo_digest).collect();

    let svc = SimService::start(ServiceConfig::with_workers(2));

    // --- all tenants at once, bits vs solo -------------------------
    let tickets: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(tenant, spec)| svc.submit(tenant as u64, *spec).expect("admitted"))
        .collect();
    let mut cache_hits = 0;
    let mut reuses = 0;
    for (tenant, ticket) in tickets.into_iter().enumerate() {
        let out = ticket.wait().expect("job completes");
        assert_eq!(
            out.state_digest, solos[tenant],
            "tenant {tenant}: service bits diverged from solo"
        );
        cache_hits += out.cache_hit as u32;
        reuses += out.world_reused as u32;
        println!(
            "tenant {tenant}: digest {:#018x}  (cache_hit={}, world_reused={})",
            out.state_digest, out.cache_hit, out.world_reused
        );
    }
    assert!(cache_hits >= 1, "the duplicate spec must hit the cache");
    println!("\nall tenants bitwise identical to their solo runs");
    println!("cache hits: {cache_hits}, warm-world reuses: {reuses}");

    // --- panic containment -----------------------------------------
    let mut faulty = specs[1];
    faulty.fault = Fault::PanicAtStep(2);
    let bad = svc.submit(99, faulty).expect("admitted");
    let survivors: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(tenant, spec)| svc.submit(tenant as u64, *spec).expect("admitted"))
        .collect();
    let err = bad.wait().expect_err("faulty job must fail");
    println!("\ntenant 99's fault contained: {err}");
    for (tenant, ticket) in survivors.into_iter().enumerate() {
        let out = ticket.wait().expect("survivor completes");
        assert_eq!(
            out.state_digest, solos[tenant],
            "tenant {tenant} perturbed by tenant 99's panic"
        );
    }
    println!("all survivor tenants still bitwise identical");

    // --- admission control -----------------------------------------
    let mut invalid = specs[0];
    invalid.dt = -1.0;
    let reason = svc.submit(7, invalid).expect_err("invalid spec rejected");
    println!("\ninvalid spec rejected at admission: {reason}");

    // --- metering reconciliation -----------------------------------
    let meters = svc.meters();
    let stats = svc.shutdown();
    let total_jobs: u64 = meters.values().map(|m| m.jobs_completed).sum();
    println!("\nper-tenant metering ({total_jobs} completed jobs):");
    for (tenant, m) in &meters {
        println!(
            "  tenant {tenant}: {} jobs, {} steps, {} RMA msgs, {} bytes, {:.4} modeled s",
            m.jobs_completed, m.steps, m.rma_messages, m.rma_bytes, m.modeled_seconds
        );
    }
    assert_eq!(stats.jobs_completed, total_jobs);
    assert_eq!(stats.pool.idle, 0, "shutdown drains every warm world");
    println!(
        "\npool over the whole run: {} spawned, {} reused, {} poisoned dropped",
        stats.pool.spawned, stats.pool.reused, stats.pool.poisoned_dropped
    );
    println!("tenant_service: all assertions passed");
}
