//! Screened electrostatics of an ionic crystal — the Yukawa use case
//! (Debye–Hückel / Poisson–Boltzmann screening, the application family
//! the paper's §5 points at).
//!
//! An NaCl-like jittered lattice of alternating ±1 charges interacts via
//! the Yukawa kernel `e^{-κr}/r`. Screening makes the per-ion energy
//! converge to a bulk value; we report it for a few κ and verify that
//! stronger screening lowers the interaction magnitude. The treecode
//! result is validated against direct summation.
//!
//! ```text
//! cargo run --release --example screened_electrostatics
//! ```

use bltc::core::prelude::*;

fn main() {
    let side = 24; // 24³ = 13 824 ions
    let ions = ParticleSet::lattice_jitter(side, 0.05, 11);
    let n = ions.len();
    println!("NaCl-like lattice: {side}³ = {n} ions, 5% positional jitter");
    println!("lattice spacing h = {:.4}\n", 2.0 / (side - 1) as f64);

    let params = BltcParams::new(0.7, 7, 300, 300);
    let engine = ParallelEngine::new(params);

    println!("kappa    E_per_ion      sampled_err   evals/N");
    let mut prev_energy = f64::INFINITY;
    for &kappa in &[0.5, 2.0, 8.0] {
        let kernel = Yukawa::new(kappa);
        let result = engine.compute(&ions, &ions, &kernel);
        // Per-ion interaction energy E = 1/(2N) Σ q_i φ_i  (Madelung-like).
        let e: f64 = ions
            .q
            .iter()
            .zip(&result.potentials)
            .map(|(q, phi)| q * phi)
            .sum::<f64>()
            / (2.0 * n as f64);
        let idx = bltc::core::error::sample_indices(n, 300, 5);
        let exact = direct_sum_subset(&ions, &idx, &ions, &kernel);
        let err = bltc::core::error::sampled_relative_l2_error(&exact, &result.potentials, &idx);
        println!(
            "{kappa:>5}  {e:>12.6}  {err:>12.2e}  {:>8.0}",
            result.ops.kernel_evals() as f64 / n as f64
        );
        let mag = e.abs();
        assert!(err < 1e-4, "treecode error too large at kappa={kappa}");
        assert!(
            mag < prev_energy,
            "stronger screening must reduce interaction magnitude"
        );
        prev_energy = mag;
        // The alternating lattice is attractive (Madelung-like, E < 0).
        assert!(e < 0.0, "alternating lattice energy should be negative");
    }
    println!("\nOK — screening monotonically reduces the per-ion energy magnitude");
}
