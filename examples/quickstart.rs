//! Quickstart: compute Coulomb potentials for 10 000 random particles
//! with the barycentric Lagrange treecode and check the error against
//! direct summation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bltc::core::prelude::*;

fn main() {
    // 10k particles uniform in [-1,1]^3 with charges uniform in [-1,1]
    // (the paper's test distribution), deterministic seed.
    let particles = ParticleSet::random_cube(10_000, 42);

    // Treecode parameters: MAC θ = 0.8, interpolation degree n = 6,
    // leaf/batch capacity 500 (the capacity should exceed the (n+1)³ =
    // 343 proxy points per cluster, or the efficiency condition of the
    // MAC sends most interactions down the exact path).
    let params = BltcParams::new(0.8, 6, 500, 500);

    // Serial CPU engine; swap in ParallelEngine or bltc::gpu::GpuEngine
    // for the shared-memory / simulated-GPU versions — results agree.
    let engine = SerialEngine::new(params);
    let result = engine.compute(&particles, &particles, &Coulomb);

    // Reference: O(N²) direct summation.
    let exact = direct_sum(&particles, &particles, &Coulomb);
    let err = relative_l2_error(&exact, &result.potentials);

    println!("N                    : {}", particles.len());
    println!(
        "tree nodes / leaves  : {} / {}",
        result.tree_stats.nodes, result.tree_stats.leaves
    );
    println!(
        "kernel evaluations   : {} ({}x fewer than direct)",
        result.ops.kernel_evals(),
        (particles.len() as u64 * particles.len() as u64) / result.ops.kernel_evals().max(1),
    );
    println!("relative 2-norm error: {err:.3e}");
    println!(
        "phases (s)           : setup {:.3}, precompute {:.3}, compute {:.3}",
        result.timings.setup, result.timings.precompute, result.timings.compute
    );
    assert!(err < 1e-4, "treecode error unexpectedly large");
    println!("OK — treecode matches direct summation to ~5 digits at θ=0.7, n=6");
}
