//! Persistent SPMD sessions end-to-end: the same 4-rank, 100-step
//! gravitating Plummer sphere as `distributed_dynamics`, run twice —
//! once with the respawn-per-step integrator (a fresh SPMD world every
//! evaluation) and once through a persistent session (ranks spawned
//! once, state resident on the ranks, repartition via rank-to-rank
//! collectives and delta particle migration).
//!
//! Checks performed (and asserted — the ISSUE-4 acceptance criteria):
//! - the persistent trajectory matches the respawn trajectory to
//!   ≤ 1e-12 per coordinate (they are in fact bitwise identical),
//! - relative energy drift stays ≤ 1e-3,
//! - the persistent run performs exactly **one** thread-spawn phase
//!   (the respawn run performs one per force evaluation),
//! - repartition data flows rank-to-rank: migration bytes appear in
//!   the traffic matrix, nothing is gathered through the driver,
//! - every migration step moves strictly fewer bytes than the modeled
//!   full-repartition exchange.
//!
//! ```text
//! cargo run --release --example persistent_dynamics
//! ```

use bltc::core::prelude::*;
use bltc::dist::DistConfig;
use bltc::sim::{plummer_sphere, Integrator, PersistentIntegrator, SimConfig};

fn main() {
    let (n, ranks, steps) = (4_000, 4, 100);
    let dist = DistConfig::comet(BltcParams::new(0.7, 6, 200, 200));
    let cfg = SimConfig::new(dist, ranks, 1e-3).with_repartition_every(10);

    println!("persistent vs respawn dynamics — Plummer sphere, N = {n}, {ranks} ranks");
    println!(
        "velocity-Verlet, dt = {}, {steps} steps, repartition every {}\n",
        cfg.dt, cfg.repartition_every
    );

    // ---- respawn-per-step baseline ----------------------------------
    // (Scenario constructed through the exported `plummer_sphere`
    // scenario constructor — the single source of Plummer setup.)
    let (mut rstate, rmodel) = plummer_sphere(n, 1.0, 0.05, 42);
    let mut respawn = Integrator::new(cfg, &rstate, &rmodel);
    respawn.run(&mut rstate, &rmodel, steps);
    let rrep = respawn.report().clone();

    // ---- persistent session -----------------------------------------
    let (pstate, pmodel) = plummer_sphere(n, 1.0, 0.05, 42);
    let mut persistent = PersistentIntegrator::new(cfg, &pstate, &pmodel);
    println!(" step   time      E          migrated   mig KiB   full KiB");
    for rep in persistent.run(steps) {
        if rep.repartitioned {
            // Acceptance: migration moves strictly fewer bytes than a
            // full repartition exchange would.
            assert!(
                rep.migration_bytes < rep.full_exchange_bytes,
                "step {}: migration {} !< full {}",
                rep.step,
                rep.migration_bytes,
                rep.full_exchange_bytes
            );
            println!(
                "{:>5}  {:>5.3}  {:>9.6}  {:>8}  {:>8.1}  {:>9.1}",
                rep.step,
                rep.time,
                rep.total_energy(),
                rep.migrated_particles,
                rep.migration_bytes as f64 / 1024.0,
                rep.full_exchange_bytes as f64 / 1024.0,
            );
        }
    }
    let prep = persistent.report().clone();

    // ---- acceptance: trajectory parity ≤ 1e-12 per coordinate -------
    let snap = persistent.snapshot();
    let mut max_dev = 0.0f64;
    for i in 0..rstate.len() {
        for (a, b) in [
            (rstate.particles.x[i], snap.particles.x[i]),
            (rstate.particles.y[i], snap.particles.y[i]),
            (rstate.particles.z[i], snap.particles.z[i]),
        ] {
            max_dev = max_dev.max((a - b).abs());
        }
    }
    assert!(max_dev <= 1e-12, "trajectory deviation {max_dev} > 1e-12");

    let drift = prep.max_relative_energy_drift();
    assert!(drift <= 1e-3, "energy drift {drift} exceeds 1e-3");

    // ---- acceptance: one spawn phase, rank-to-rank repartition ------
    assert_eq!(prep.world_spawns, 1, "one thread-spawn phase");
    assert_eq!(rrep.world_spawns, steps as u64 + 1, "respawn pays per eval");
    assert!(prep.migration_traffic.total_remote_bytes() > 0);
    assert_eq!(
        prep.migration_bytes,
        prep.migration_traffic.total_remote_bytes(),
        "migration phase reconciles in the traffic matrix"
    );
    // The respawn path's repartitions never touch the fabric — all its
    // repartition data moves through the driver instead.
    assert_eq!(rrep.migration_traffic.total_remote_bytes(), 0);

    println!("\nafter {steps} steps:");
    println!("  max per-coordinate deviation : {max_dev:.2e} (≤ 1e-12)");
    println!("  energy drift                 : {drift:.2e} (≤ 1e-3)");
    println!(
        "  thread-spawn phases          : persistent {}, respawn {}",
        prep.world_spawns, rrep.world_spawns
    );
    println!(
        "  migrations                   : {} epochs, {} particles, {:.1} KiB total ({:.1} KiB/epoch)",
        prep.migrations,
        prep.migrated_particles,
        prep.migration_bytes as f64 / 1024.0,
        prep.migration_bytes as f64 / 1024.0 / prep.migrations as f64,
    );
    println!(
        "  modeled host amortization    : spawn {:.4}s once + epochs {:.4}s vs spawn {:.4}s respawned",
        prep.spawn_host_s, prep.epoch_host_s, rrep.spawn_host_s
    );
    println!(
        "  modeled s/step               : persistent {:.6}, respawn {:.6} ({:.1}% faster)",
        prep.seconds_per_step(),
        rrep.seconds_per_step(),
        100.0 * (rrep.seconds_per_step() - prep.seconds_per_step()) / rrep.seconds_per_step(),
    );

    println!("\nOK — persistent session matched the respawn trajectory with one spawn phase");
}
