//! Inspect the simulated GPU execution of the BLTC: per-kernel-class
//! profile (the four kernels of §3.2), phase breakdown, occupancy, and
//! the effect of the asynchronous-stream count.
//!
//! ```text
//! cargo run --release --example gpu_profile
//! ```

use bltc::core::prelude::*;
use bltc::gpu::GpuEngine;
use bltc::gpu_sim::DeviceSpec;

fn main() {
    let n = 30_000;
    let ps = ParticleSet::random_cube(n, 21);
    let params = BltcParams::new(0.7, 6, 1000, 1000);
    let spec = DeviceSpec::titan_v();

    println!(
        "device: {} — {} SMs, {:.1} TF/s FP64 peak, {} streams",
        spec.name,
        spec.sm_count,
        spec.peak_dp_gflops / 1000.0,
        spec.num_streams
    );
    println!(
        "problem: N = {n}, θ = {}, n = {}, N_B = N_L = {}\n",
        params.theta, params.degree, params.batch_cap
    );

    let report = GpuEngine::with_spec(params, spec).compute_detailed(&ps, &ps, &Coulomb);

    println!("kernel profile (Fig. 3's launch structure):");
    print!("{}", report.profile_table);
    println!("\ntotal kernel launches: {}", report.kernel_launches);

    let s = report.sim;
    println!("\nsimulated phase breakdown:");
    println!(
        "  host setup (tree/batches/lists) : {:>9.3} ms",
        s.setup_host_s * 1e3
    );
    println!(
        "  HtD sources                     : {:>9.3} ms",
        s.htod_sources_s * 1e3
    );
    println!(
        "  precompute kernels              : {:>9.3} ms",
        s.precompute_s * 1e3
    );
    println!(
        "  DtH modified charges            : {:>9.3} ms",
        s.dtoh_charges_s * 1e3
    );
    println!(
        "  HtD targets (LET)               : {:>9.3} ms",
        s.htod_let_s * 1e3
    );
    println!(
        "  compute kernels                 : {:>9.3} ms",
        s.compute_s * 1e3
    );
    println!(
        "  DtH potentials                  : {:>9.3} ms",
        s.dtoh_potentials_s * 1e3
    );
    println!(
        "  total                           : {:>9.3} ms",
        s.total() * 1e3
    );

    println!("\nasync-stream sweep (compute phase):");
    for streams in 1..=spec.num_streams {
        let r = GpuEngine::with_spec(params, spec)
            .with_streams(streams)
            .compute_detailed(&ps, &ps, &Coulomb);
        println!(
            "  {streams} stream(s): {:>8.3} ms{}",
            r.sim.compute_s * 1e3,
            if streams == 1 { "  (baseline)" } else { "" }
        );
    }
    println!("\nthe paper reports ~25% compute-time reduction from 4 streams (§3.2)");
}
