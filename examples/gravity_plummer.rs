//! Gravitational N-body potential of a Plummer sphere — the classic
//! astrophysics workload that motivated treecodes (Barnes–Hut 1986).
//!
//! The Plummer distribution is strongly centrally concentrated, so the
//! octree is deep and uneven — a good stress test for the aspect-ratio
//! splitting rule and the batch MAC. The gravitational kernel is the
//! Coulomb kernel with masses for charges (G = 1 units); we also compute
//! the total potential energy `U = -½ Σ_i m_i φ(x_i)` and compare it to
//! the Plummer model's analytic value `U = -3π/32 · GM²/a`.
//!
//! ```text
//! cargo run --release --example gravity_plummer
//! ```

use bltc::core::prelude::*;

fn main() {
    let n = 20_000;
    let a = 1.0; // Plummer scale radius
    let stars = ParticleSet::plummer(n, a, 7);

    let params = BltcParams::new(0.7, 8, 400, 400);
    let engine = ParallelEngine::new(params);
    let result = engine.compute(&stars, &stars, &Coulomb);

    // Sampled accuracy check against direct summation.
    let idx = bltc::core::error::sample_indices(n, 400, 3);
    let exact = direct_sum_subset(&stars, &idx, &stars, &Coulomb);
    let err = bltc::core::error::sampled_relative_l2_error(&exact, &result.potentials, &idx);

    // Potential energy: U = -1/2 Σ m_i φ_i (φ here is positive 1/r sum;
    // gravity flips the sign).
    let u: f64 = -0.5
        * stars
            .q
            .iter()
            .zip(&result.potentials)
            .map(|(m, phi)| m * phi)
            .sum::<f64>();
    let u_analytic = -3.0 * std::f64::consts::PI / 32.0 / a; // GM²=1
    println!("Plummer sphere, N = {n}, scale radius a = {a}");
    println!(
        "tree: {} nodes, depth {}, leaf sizes {}..{}",
        result.tree_stats.nodes,
        result.tree_stats.max_level,
        result.tree_stats.min_leaf,
        result.tree_stats.max_leaf
    );
    println!("sampled relative error vs direct sum: {err:.2e}");
    println!("potential energy U  (treecode): {u:.5}");
    println!("potential energy U  (analytic): {u_analytic:.5}");
    let rel = ((u - u_analytic) / u_analytic).abs();
    println!(
        "relative deviation: {:.2}%  (finite-N sampling + tail clamp)",
        rel * 100.0
    );
    assert!(err < 1e-5, "treecode error too large: {err}");
    assert!(rel < 0.05, "energy deviates from Plummer analytic value");
    println!("OK");
}
