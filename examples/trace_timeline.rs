//! Deterministic tracing end-to-end: a 4-rank pipelined epoch and a
//! two-tenant service burst, exported through both `bltc::trace`
//! surfaces — the Perfetto-loadable Chrome trace-event JSON and the
//! text flame summary.
//!
//! Checks performed (and asserted — the tracing contract):
//! - per rank, the span `billed_s` sums reconcile against the five
//!   serial phase clocks to ≤ 1e-12 relative, and the latest span end
//!   *is* the pipelined critical path;
//! - NIC span bytes equal the drained traffic matrix, globally;
//! - service spans are tenant/job-stamped with no leakage, and each
//!   job carries exactly one whole-job envelope billing its total;
//! - both exporters are byte-identical across a re-render.
//!
//! Writes `trace_epoch.json` and `trace_service.json` next to the
//! working directory; load either at <https://ui.perfetto.dev>.
//!
//! ```text
//! cargo run --release --example trace_timeline
//! ```

use bltc::core::prelude::*;
use bltc::dist::{run_distributed, DistConfig};
use bltc::service::{Fault, JobSpec, Scenario, ServiceConfig, SimService};
use bltc::trace::{chrome_trace, flame_summary, sort_spans, Phase, Span, Track};

fn main() {
    // --- a 4-rank pipelined epoch ----------------------------------
    let ps = ParticleSet::random_cube(2_000, 21);
    let cfg = DistConfig::comet(BltcParams::new(0.8, 4, 100, 100));
    let rep = run_distributed(&ps, 4, &cfg, &Coulomb);
    let mut spans: Vec<Span> = rep
        .ranks
        .iter()
        .flat_map(|r| r.pipeline.spans.iter().copied())
        .collect();
    sort_spans(&mut spans);
    println!(
        "pipelined epoch: 4 ranks, {} spans, critical path {:.6e} s (serial {:.6e} s)\n",
        spans.len(),
        rep.pipelined_s,
        rep.total_s
    );

    // Billing reconciliation: every span is exact accounting.
    for r in &rep.ranks {
        for (phase, clock) in [
            (Phase::SetupHost, r.setup_host_s),
            (Phase::SetupComm, r.setup_comm_s),
            (Phase::SetupStage, r.setup_stage_s),
            (Phase::Precompute, r.precompute_s),
            (Phase::Compute, r.compute_s),
        ] {
            let billed: f64 = r
                .pipeline
                .spans
                .iter()
                .filter(|s| s.phase == phase)
                .map(|s| s.billed_s)
                .sum();
            assert!(
                (billed - clock).abs() <= 1e-12 * billed.abs().max(clock.abs()),
                "rank {} {phase:?}: billed {billed:e} vs clock {clock:e}",
                r.rank
            );
        }
        let makespan = r.pipeline.spans.iter().map(|s| s.end_s).fold(0.0, f64::max);
        assert_eq!(makespan.to_bits(), r.pipeline.pipelined_s.to_bits());
    }
    let nic_bytes: u64 = spans
        .iter()
        .filter(|s| matches!(s.track, Track::Nic(_)))
        .map(|s| s.bytes)
        .sum();
    assert_eq!(nic_bytes, rep.traffic.total_remote_bytes());
    println!("per-rank billing reconciles; NIC span bytes == traffic ({nic_bytes} B)\n");

    println!("{}", flame_summary(&spans));
    let json = chrome_trace(&spans);
    assert_eq!(json, chrome_trace(&spans), "export must be byte-identical");
    std::fs::write("trace_epoch.json", &json).expect("write trace_epoch.json");
    println!("wrote trace_epoch.json ({} spans)\n", spans.len());

    // --- a two-tenant service burst --------------------------------
    let spec = |seed: u64| JobSpec {
        scenario: Scenario::Plummer {
            a: 1.0,
            softening: 0.05,
        },
        n: 250,
        seed,
        ranks: 2,
        steps: 3,
        dt: 1e-3,
        repartition_every: 2,
        dist: DistConfig::comet(BltcParams::new(0.7, 3, 60, 60)),
        fault: Fault::None,
        checkpoint_every: None,
        deadline_s: None,
        allow_degraded: false,
    };
    let svc = SimService::start(ServiceConfig {
        workers: 2,
        queue_depth: 8,
        cache_capacity: 4,
        max_retries: 0,
        start_paused: false,
        trace: true,
        ..ServiceConfig::with_workers(2)
    });
    let tickets: Vec<_> = [1u64, 2, 1, 2]
        .iter()
        .enumerate()
        .map(|(i, &tenant)| svc.submit(tenant, spec(30 + i as u64)).expect("admitted"))
        .collect();
    let outputs: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("job completes"))
        .collect();
    let stats = svc.shutdown();

    for out in &outputs {
        for s in &out.trace_spans {
            assert_eq!(
                (s.tenant, s.job),
                (Some(out.tenant), Some(out.job_id)),
                "span leaked across the job boundary"
            );
        }
        let envelopes: Vec<&Span> = out
            .trace_spans
            .iter()
            .filter(|s| s.phase == Phase::Job)
            .collect();
        assert_eq!(envelopes.len(), 1, "exactly one whole-job envelope");
        assert_eq!(
            envelopes[0].billed_s.to_bits(),
            out.report.total_s.to_bits()
        );
        println!(
            "tenant {} job {}: {} spans, modeled {:.6e} s",
            out.tenant,
            out.job_id,
            out.trace_spans.len(),
            out.report.total_s
        );
    }
    println!();
    for (tenant, meter) in &stats.meters {
        println!(
            "tenant {tenant} metrics:\n{}",
            meter.snapshot().render_text()
        );
    }
    println!("{}", flame_summary(&stats.trace_spans));
    let json = chrome_trace(&stats.trace_spans);
    std::fs::write("trace_service.json", &json).expect("write trace_service.json");
    println!(
        "wrote trace_service.json ({} spans)\n",
        stats.trace_spans.len()
    );
    println!("trace_timeline: all assertions passed");
}
